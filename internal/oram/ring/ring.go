// Package ring implements Ring ORAM (Ren et al., USENIX Security 2015),
// the bandwidth-optimized Path ORAM variant the paper's related work
// contrasts with (§VI). Each bucket holds Z real slots plus S dummies
// behind a per-bucket permutation; an access reads just one block per
// bucket along the path (the target where present, a fresh dummy
// elsewhere), and full-path evictions happen only every A accesses in
// reverse-lexicographic leaf order. Online bandwidth per access is thus
// L+1 blocks instead of Path ORAM's Z(L+1).
//
// The implementation is functional: real data, per-slot encryption and
// sealed bucket metadata, with I/O counters so benchmarks can compare
// block movement against Path ORAM.
package ring

import (
	"encoding/binary"
	"fmt"

	"doram/internal/oram"
	"doram/internal/stats"
	"doram/internal/xrand"
)

// Params configures a Ring ORAM instance.
type Params struct {
	// Levels is L: the tree has L+1 levels and 2^L leaves.
	Levels int
	// Z is the real-block capacity per bucket.
	Z int
	// S is the dummy-slot count per bucket; a bucket serves S accesses
	// between reshuffles.
	S int
	// A is the eviction rate: one full-path eviction every A accesses.
	A int
	// BlockSize is the payload bytes per block.
	BlockSize int
	// StashCapacity bounds the stash.
	StashCapacity int
}

// DefaultParams returns the small-Z configuration of the Ring ORAM paper
// (Z=4, S=5, A=3).
func DefaultParams(levels int) Params {
	return Params{Levels: levels, Z: 4, S: 5, A: 3, BlockSize: 64, StashCapacity: 600}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.Levels < 1 || p.Levels > 32:
		return fmt.Errorf("ring: Levels %d out of range", p.Levels)
	case p.Z < 1 || p.S < 1:
		return fmt.Errorf("ring: Z and S must be positive")
	case p.A < 1 || p.A > p.Z:
		return fmt.Errorf("ring: A must be in [1, Z] for stash stability")
	case p.BlockSize < 8:
		return fmt.Errorf("ring: BlockSize too small")
	case p.StashCapacity < p.Z:
		return fmt.Errorf("ring: stash must hold at least one bucket")
	}
	return nil
}

// NumLeaves returns 2^L.
func (p Params) NumLeaves() uint64 { return 1 << uint(p.Levels) }

// NumNodes returns 2^(L+1)-1.
func (p Params) NumNodes() uint64 { return 1<<uint(p.Levels+1) - 1 }

// MaxBlocks returns the logical capacity at 50% utilization of real slots.
func (p Params) MaxBlocks() uint64 { return p.NumNodes() * uint64(p.Z) / 2 }

// IOStats counts block movement between client and untrusted memory.
type IOStats struct {
	Accesses     stats.Counter
	BlocksRead   stats.Counter // single-slot online reads
	BlocksWrit   stats.Counter // full-bucket writes (evictions, reshuffles)
	Evictions    stats.Counter
	EarlyShuffle stats.Counter
	MetaReads    stats.Counter
}

// bucket is the untrusted per-node state: sealed slots plus a sealed
// metadata header.
type bucket struct {
	slots   [][]byte // sealed per-slot payloads, len Z+S
	meta    []byte   // sealed header
	version uint64
}

// slotMeta is the decrypted header: per-slot logical address (or dummy)
// and consumed flags, plus the access count since the last reshuffle.
type slotMeta struct {
	addrs    []uint64 // oram.InvalidPath-like sentinel for dummies
	leaves   []uint64
	consumed []bool
	count    int
}

const dummyAddr = ^uint64(0)

// Client is a functional Ring ORAM.
type Client struct {
	p       Params
	pos     *oram.FlatMap
	stash   *oram.Stash
	buckets []bucket
	crypto  *oram.Crypto
	rng     *xrand.Rand

	round     uint64 // accesses since start, drives eviction schedule
	evictLeaf uint64 // reverse-lexicographic eviction pointer

	// pinned guards the in-flight access's block: an early reshuffle
	// during the path read must not evict it out of the stash before the
	// access serves it.
	pinned    uint64
	hasPinned bool

	stats IOStats
}

// New builds a Ring ORAM with in-memory untrusted storage.
func New(p Params, key []byte, seed uint64) (*Client, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	crypto, err := oram.NewCrypto(key, false)
	if err != nil {
		return nil, err
	}
	c := &Client{
		p:       p,
		pos:     oram.NewFlatMap(p.MaxBlocks()),
		stash:   oram.NewStash(p.StashCapacity),
		buckets: make([]bucket, p.NumNodes()),
		crypto:  crypto,
		rng:     xrand.New(seed),
	}
	for n := range c.buckets {
		c.initBucket(oram.NodeID(n), nil)
	}
	c.stats = IOStats{} // initialization writes are not access I/O
	return c, nil
}

// Stats returns the I/O counters.
func (c *Client) Stats() *IOStats { return &c.stats }

// StashLen returns the stash occupancy.
func (c *Client) StashLen() int { return c.stash.Len() }

// StashMax returns the stash high-water mark.
func (c *Client) StashMax() int { return c.stash.MaxSeen() }

// Params returns the configuration.
func (c *Client) Params() Params { return c.p }

// metaKeyFor derives the metadata nonce space from the slot space.
func metaVersion(v uint64) uint64 { return v | 1<<63 }

// initBucket (re)writes node with the given real blocks (nil for empty)
// and fresh dummies behind a new random permutation.
func (c *Client) initBucket(node oram.NodeID, blocks []*oram.Block) {
	total := c.p.Z + c.p.S
	b := &c.buckets[node]
	b.version++
	b.slots = make([][]byte, total)
	m := slotMeta{
		addrs:    make([]uint64, total),
		leaves:   make([]uint64, total),
		consumed: make([]bool, total),
	}
	// Random permutation of slot indices.
	perm := make([]int, total)
	for i := range perm {
		perm[i] = i
	}
	for i := len(perm) - 1; i > 0; i-- {
		j := c.rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i := 0; i < total; i++ {
		slot := perm[i]
		var payload []byte
		if i < len(blocks) {
			m.addrs[slot] = blocks[i].Addr
			m.leaves[slot] = blocks[i].Leaf
			payload = blocks[i].Data
		} else {
			m.addrs[slot] = dummyAddr
			payload = make([]byte, c.p.BlockSize)
		}
		buf := make([]byte, c.p.BlockSize)
		copy(buf, payload)
		b.slots[slot] = c.crypto.Seal(node, b.version<<8|uint64(slot), buf)
	}
	b.meta = c.crypto.Seal(node, metaVersion(b.version), encodeMeta(&m, total))
	c.stats.BlocksWrit.Add(uint64(total))
}

func encodeMeta(m *slotMeta, total int) []byte {
	buf := make([]byte, 8+total*17)
	binary.LittleEndian.PutUint64(buf, uint64(m.count))
	for i := 0; i < total; i++ {
		off := 8 + i*17
		binary.LittleEndian.PutUint64(buf[off:], m.addrs[i])
		binary.LittleEndian.PutUint64(buf[off+8:], m.leaves[i])
		if m.consumed[i] {
			buf[off+16] = 1
		}
	}
	return buf
}

func decodeMeta(buf []byte, total int) *slotMeta {
	m := &slotMeta{
		addrs:    make([]uint64, total),
		leaves:   make([]uint64, total),
		consumed: make([]bool, total),
		count:    int(binary.LittleEndian.Uint64(buf)),
	}
	for i := 0; i < total; i++ {
		off := 8 + i*17
		m.addrs[i] = binary.LittleEndian.Uint64(buf[off:])
		m.leaves[i] = binary.LittleEndian.Uint64(buf[off+8:])
		m.consumed[i] = buf[off+16] == 1
	}
	return m
}

// readMeta fetches and decrypts a bucket's header.
func (c *Client) readMeta(node oram.NodeID) (*slotMeta, error) {
	b := &c.buckets[node]
	c.stats.MetaReads.Inc()
	plain, err := c.crypto.Open(node, metaVersion(b.version), b.meta)
	if err != nil {
		return nil, err
	}
	return decodeMeta(plain, c.p.Z+c.p.S), nil
}

// writeMeta re-seals a bucket's header in place (same version: header
// updates within a round do not rewrite slots).
func (c *Client) writeMeta(node oram.NodeID, m *slotMeta) {
	b := &c.buckets[node]
	b.meta = c.crypto.Seal(node, metaVersion(b.version), encodeMeta(m, c.p.Z+c.p.S))
}

// readSlot fetches and decrypts one slot.
func (c *Client) readSlot(node oram.NodeID, slot int) ([]byte, error) {
	b := &c.buckets[node]
	c.stats.BlocksRead.Inc()
	return c.crypto.Open(node, b.version<<8|uint64(slot), b.slots[slot])
}

// Access reads or writes logical block addr.
func (c *Client) Access(op oram.Op, addr uint64, data []byte) ([]byte, error) {
	if addr >= c.p.MaxBlocks() {
		return nil, fmt.Errorf("ring: address %d beyond capacity %d", addr, c.p.MaxBlocks())
	}
	leaf := c.pos.Get(addr)
	if leaf == oram.InvalidPath {
		leaf = c.rng.Uint64n(c.p.NumLeaves())
		c.pos.Set(addr, leaf)
	}
	newLeaf := c.rng.Uint64n(c.p.NumLeaves())
	c.pos.Set(addr, newLeaf)

	// Read one slot per bucket along the path, pinning the target so an
	// early reshuffle cannot evict it before it is served.
	c.pinned, c.hasPinned = addr, true
	for _, node := range oram.PathNodes(leaf, c.p.Levels) {
		if err := c.readPathBucket(node, addr, newLeaf); err != nil {
			c.hasPinned = false
			return nil, err
		}
	}
	c.hasPinned = false

	// Serve from the stash (the path read moved the block there).
	blk := c.stash.Get(addr)
	if blk == nil {
		blk = &oram.Block{Addr: addr, Leaf: newLeaf, Data: make([]byte, c.p.BlockSize)}
		if err := c.stash.Put(blk); err != nil {
			return nil, err
		}
	}
	blk.Leaf = newLeaf
	if op == oram.OpWrite {
		copy(blk.Data, data)
		for i := len(data); i < len(blk.Data); i++ {
			blk.Data[i] = 0
		}
	}
	out := append([]byte(nil), blk.Data...)

	c.stats.Accesses.Inc()
	c.round++
	if c.round%uint64(c.p.A) == 0 {
		if err := c.evictPath(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// readPathBucket performs the single-slot online read of one bucket: the
// target block if the bucket holds it, otherwise a fresh dummy; buckets
// that exhaust their dummies reshuffle early.
func (c *Client) readPathBucket(node oram.NodeID, addr uint64, newLeaf uint64) error {
	m, err := c.readMeta(node)
	if err != nil {
		return err
	}
	slot := -1
	for i, a := range m.addrs {
		if a == addr && !m.consumed[i] {
			slot = i
			break
		}
	}
	if slot < 0 {
		// Pick an unconsumed dummy.
		for i, a := range m.addrs {
			if a == dummyAddr && !m.consumed[i] {
				slot = i
				break
			}
		}
	}
	if slot < 0 {
		// No usable slot left (pathological): early reshuffle, then the
		// bucket is fresh and a dummy is available.
		if err := c.reshuffle(node, m); err != nil {
			return err
		}
		m, err = c.readMeta(node)
		if err != nil {
			return err
		}
		for i, a := range m.addrs {
			if a == dummyAddr && !m.consumed[i] {
				slot = i
				break
			}
		}
	}
	payload, err := c.readSlot(node, slot)
	if err != nil {
		return err
	}
	if m.addrs[slot] == addr {
		blk := &oram.Block{Addr: addr, Leaf: newLeaf, Data: payload}
		if err := c.stash.Put(blk); err != nil {
			return err
		}
	}
	m.consumed[slot] = true
	m.count++
	if m.count >= c.p.S {
		return c.reshuffle(node, m)
	}
	c.writeMeta(node, m)
	return nil
}

// reshuffle reads a bucket's surviving real blocks into the stash and
// rewrites it fresh (early reshuffle when dummies run out).
func (c *Client) reshuffle(node oram.NodeID, m *slotMeta) error {
	c.stats.EarlyShuffle.Inc()
	if err := c.drainBucket(node, m); err != nil {
		return err
	}
	// Refill from the stash with blocks that may live at this node.
	blocks := c.evictForNode(node)
	c.initBucket(node, blocks)
	return nil
}

// drainBucket moves every valid unconsumed real block into the stash.
func (c *Client) drainBucket(node oram.NodeID, m *slotMeta) error {
	for i, a := range m.addrs {
		if a == dummyAddr || m.consumed[i] {
			continue
		}
		payload, err := c.readSlot(node, i)
		if err != nil {
			return err
		}
		// Skip stale copies: the live copy is in the stash or mapped
		// elsewhere after its last access consumed this slot's bucket.
		if c.stash.Get(a) != nil {
			continue
		}
		if err := c.stash.Put(&oram.Block{Addr: a, Leaf: m.leaves[i], Data: payload}); err != nil {
			return err
		}
	}
	return nil
}

// evictForNode selects up to Z stash blocks whose leaf passes through node.
func (c *Client) evictForNode(node oram.NodeID) []*oram.Block {
	level := node.Level()
	var out []*oram.Block
	for _, b := range c.stash.All() {
		if len(out) >= c.p.Z {
			break
		}
		if c.hasPinned && b.Addr == c.pinned {
			continue
		}
		if oram.NodeAt(level, b.Leaf, c.p.Levels) == node {
			out = append(out, b)
			c.stash.Remove(b.Addr)
		}
	}
	return out
}

// evictPath performs the periodic full-path eviction in
// reverse-lexicographic leaf order.
func (c *Client) evictPath() error {
	c.stats.Evictions.Inc()
	leaf := reverseBits(c.evictLeaf, c.p.Levels)
	c.evictLeaf = (c.evictLeaf + 1) % c.p.NumLeaves()

	nodes := oram.PathNodes(leaf, c.p.Levels)
	// Drain every bucket on the path, deepest first.
	for i := len(nodes) - 1; i >= 0; i-- {
		m, err := c.readMeta(nodes[i])
		if err != nil {
			return err
		}
		if err := c.drainBucket(nodes[i], m); err != nil {
			return err
		}
	}
	// Rewrite deepest-first so blocks go as deep as possible.
	for i := len(nodes) - 1; i >= 0; i-- {
		c.initBucket(nodes[i], c.evictForNode(nodes[i]))
	}
	return nil
}

// reverseBits reverses the low n bits of v (the reverse-lexicographic
// eviction order of the Ring ORAM paper).
func reverseBits(v uint64, n int) uint64 {
	var out uint64
	for i := 0; i < n; i++ {
		out = out<<1 | (v>>uint(i))&1
	}
	return out
}
