package ring

import (
	"fmt"
	"testing"

	"doram/internal/oram"
	"doram/internal/xrand"
)

var key = []byte("0123456789abcdef")

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams(8).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{Levels: 0, Z: 4, S: 5, A: 3, BlockSize: 64, StashCapacity: 100},
		{Levels: 8, Z: 0, S: 5, A: 3, BlockSize: 64, StashCapacity: 100},
		{Levels: 8, Z: 4, S: 0, A: 3, BlockSize: 64, StashCapacity: 100},
		{Levels: 8, Z: 4, S: 5, A: 5, BlockSize: 64, StashCapacity: 100}, // A > Z
		{Levels: 8, Z: 4, S: 5, A: 3, BlockSize: 4, StashCapacity: 100},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestReadAfterWrite(t *testing.T) {
	c, err := New(DefaultParams(7), key, 1)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("ring oram payload")
	if _, err := c.Access(oram.OpWrite, 9, msg); err != nil {
		t.Fatal(err)
	}
	got, err := c.Access(oram.OpRead, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:len(msg)]) != string(msg) {
		t.Fatalf("read back %q", got[:len(msg)])
	}
}

func TestManyBlocksSurviveEvictionsAndReshuffles(t *testing.T) {
	c, err := New(DefaultParams(7), key, 3)
	if err != nil {
		t.Fatal(err)
	}
	n := uint64(80)
	for i := uint64(0); i < n; i++ {
		if _, err := c.Access(oram.OpWrite, i, []byte(fmt.Sprintf("blk-%03d", i))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	rng := xrand.New(9)
	for step := 0; step < 1500; step++ {
		i := rng.Uint64n(n)
		got, err := c.Access(oram.OpRead, i, nil)
		if err != nil {
			t.Fatalf("step %d read %d: %v", step, i, err)
		}
		want := fmt.Sprintf("blk-%03d", i)
		if string(got[:len(want)]) != want {
			t.Fatalf("step %d: block %d = %q, want %q", step, i, got[:len(want)], want)
		}
	}
	if c.Stats().Evictions.Value() == 0 {
		t.Fatal("no path evictions happened")
	}
	t.Logf("evictions=%d earlyShuffles=%d stashMax=%d",
		c.Stats().Evictions.Value(), c.Stats().EarlyShuffle.Value(), c.StashMax())
}

func TestOnlineBandwidthBelowPathORAM(t *testing.T) {
	// The headline Ring ORAM claim: online reads per access ~ L+1 blocks
	// versus Path ORAM's Z(L+1) (plus amortized eviction traffic, still
	// well under Path ORAM's total).
	levels := 8
	rc, err := New(DefaultParams(levels), key, 1)
	if err != nil {
		t.Fatal(err)
	}
	const accesses = 600
	rng := xrand.New(4)
	for i := 0; i < accesses; i++ {
		if _, err := rc.Access(oram.OpWrite, rng.Uint64n(200), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ringRead := float64(rc.Stats().BlocksRead.Value()) / accesses

	pathPerAccess := float64(4 * (levels + 1)) // Z(L+1), no tree-top cache
	if ringRead >= pathPerAccess/2 {
		t.Fatalf("ring online reads %.1f/access not clearly below Path ORAM's %.0f",
			ringRead, pathPerAccess)
	}
	t.Logf("ring: %.1f online reads/access vs Path ORAM %.0f; total writes %.1f/access",
		ringRead, pathPerAccess, float64(rc.Stats().BlocksWrit.Value())/accesses)
}

func TestStashBounded(t *testing.T) {
	p := DefaultParams(7)
	c, err := New(p, key, 5)
	if err != nil {
		t.Fatal(err)
	}
	n := p.MaxBlocks() / 4
	rng := xrand.New(6)
	for step := uint64(0); step < 3000; step++ {
		if _, err := c.Access(oram.OpWrite, rng.Uint64n(n), []byte{1}); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	if c.StashMax() > 200 {
		t.Fatalf("stash high-water %d suspicious for Z=4/A=3", c.StashMax())
	}
}

func TestAddressBeyondCapacityRejected(t *testing.T) {
	p := DefaultParams(5)
	c, err := New(p, key, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Access(oram.OpRead, p.MaxBlocks(), nil); err == nil {
		t.Fatal("out-of-range address accepted")
	}
}

func TestReverseBits(t *testing.T) {
	if got := reverseBits(0b001, 3); got != 0b100 {
		t.Fatalf("reverseBits(001,3) = %03b", got)
	}
	if got := reverseBits(0b110, 3); got != 0b011 {
		t.Fatalf("reverseBits(110,3) = %03b", got)
	}
	// Reverse-lexicographic order touches distinct leaves before repeating.
	seen := map[uint64]bool{}
	for i := uint64(0); i < 8; i++ {
		seen[reverseBits(i, 3)] = true
	}
	if len(seen) != 8 {
		t.Fatalf("reverse-lex order visited %d/8 leaves", len(seen))
	}
}

// TestRingMatchesReferenceModel drives Ring ORAM with random operation
// sequences against a plain map reference.
func TestRingMatchesReferenceModel(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		p := DefaultParams(7)
		c, err := New(p, key, seed)
		if err != nil {
			t.Fatal(err)
		}
		ref := map[uint64]byte{}
		rng := xrand.New(seed ^ 0xabc)
		n := p.MaxBlocks() / 2
		for i := 0; i < 800; i++ {
			addr := rng.Uint64n(n)
			if rng.Bool(0.5) {
				v := byte(rng.Uint64())
				if _, err := c.Access(oram.OpWrite, addr, []byte{v}); err != nil {
					t.Fatalf("seed %d step %d write: %v", seed, i, err)
				}
				ref[addr] = v
			} else {
				got, err := c.Access(oram.OpRead, addr, nil)
				if err != nil {
					t.Fatalf("seed %d step %d read: %v", seed, i, err)
				}
				if got[0] != ref[addr] {
					t.Fatalf("seed %d step %d: addr %d = %d, want %d", seed, i, addr, got[0], ref[addr])
				}
			}
		}
	}
}
