package oram

import (
	"doram/internal/metrics"
	"doram/internal/oram/backend"
	"doram/internal/xrand"
)

// Sampler produces the memory-access traces of a Path ORAM instance
// without storing any data. It maintains a real (sparse) position map and
// performs the protocol's remap-on-access, so the generated leaf sequence
// has exactly the distribution a functional client would produce: each
// access goes to the leaf the block was last remapped to, which is uniform
// and independent of the request stream.
//
// The timing simulator uses a Sampler at the paper's full scale (L=23,
// a 4 GB tree) where a functional client would need gigabytes of storage.
// Stash content does not influence which nodes an access touches (the
// write phase rewrites the same path it read), so omitting it changes no
// addresses.
type Sampler struct {
	p   Params
	pos *LazyMap
	rng *xrand.Rand

	// Fork Path optimization (Zhang et al., MICRO 2015, the paper's ref
	// [44]): consecutive path accesses share a tree-top prefix; the later
	// access keeps the shared buckets in the controller and skips their
	// re-read and re-write. Enabled via SetForkPath.
	forkPath bool
	havePrev bool
	prevLeaf uint64
	skipped  uint64

	// evict mirrors the functional client's eviction-strategy seam. Only
	// strategies that schedule extra eviction paths change the sampled
	// stream (selection-order strategies shuffle stash contents, which a
	// stashless sampler has none of); deterministic-two-path appends one
	// full extra path per real access, and the timing simulator then
	// prices that bandwidth. nil means the default single-path policy.
	evict      backend.EvictionStrategy
	extraPaths uint64
}

// NewSampler builds a trace sampler; it panics on invalid params, a
// configuration programming error.
func NewSampler(p Params, seed uint64) *Sampler {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	r := xrand.New(seed)
	return &Sampler{p: p, pos: NewLazyMap(p.NumLeaves(), r.Uint64()), rng: r}
}

// Params returns the instance parameters.
func (s *Sampler) Params() Params { return s.p }

// MappedBlocks returns how many logical blocks have been touched.
func (s *Sampler) MappedBlocks() int { return s.pos.Len() }

// Access returns the trace of an access to logical block addr and remaps
// the block. Strategy-scheduled extra eviction paths are merged into the
// returned trace, exactly as the functional client merges them.
func (s *Sampler) Access(addr uint64) Trace {
	leaf := s.pos.Get(addr)
	s.pos.Set(addr, s.rng.Uint64n(s.p.NumLeaves()))
	tr := s.trace(leaf)
	if s.evict != nil {
		for _, el := range s.evict.ExtraPaths(s.p.Levels) {
			etr := s.trace(el)
			tr.ReadNodes = append(tr.ReadNodes, etr.ReadNodes...)
			tr.WriteNodes = append(tr.WriteNodes, etr.WriteNodes...)
			s.extraPaths++
		}
	}
	return tr
}

// SetEviction installs the named eviction strategy (see backend.Evictions;
// "" keeps the default). For a stashless sampler only the extra-path
// schedule matters: selection-order strategies produce the same stream.
func (s *Sampler) SetEviction(name string) error {
	ev, err := backend.NewEviction(name)
	if err != nil {
		return err
	}
	s.evict = ev
	return nil
}

// ExtraEvictionPaths returns how many strategy-scheduled extra eviction
// paths have been sampled.
func (s *Sampler) ExtraEvictionPaths() uint64 { return s.extraPaths }

// Dummy returns the trace of a dummy access to a random path.
func (s *Sampler) Dummy() Trace {
	return s.trace(s.rng.Uint64n(s.p.NumLeaves()))
}

// SetForkPath toggles the Fork Path redundant-access elimination.
func (s *Sampler) SetForkPath(on bool) {
	s.forkPath = on
	s.havePrev = false
}

// SkippedNodes returns the node accesses Fork Path eliminated so far.
func (s *Sampler) SkippedNodes() uint64 { return s.skipped }

// AttachMetrics registers the sampler's position-map state under prefix
// (e.g. "sapp0.pos."). No-op on a nil registry.
func (s *Sampler) AttachMetrics(r *metrics.Registry, prefix string) {
	if r == nil {
		return
	}
	r.CounterFunc(prefix+"mapped_blocks", func() uint64 { return uint64(s.pos.Len()) })
	r.CounterFunc(prefix+"forkpath_skipped", func() uint64 { return s.skipped })
}

func (s *Sampler) trace(leaf uint64) Trace {
	tr := Trace{Leaf: leaf}
	first := s.p.TopCacheLevels
	if s.forkPath && s.havePrev {
		// Skip levels shared with the previous path: those buckets are
		// still buffered in the controller from the last write phase.
		shared := s.p.TopCacheLevels
		for shared <= s.p.Levels &&
			NodeAt(shared, leaf, s.p.Levels) == NodeAt(shared, s.prevLeaf, s.p.Levels) {
			shared++
		}
		s.skipped += 2 * uint64(shared-first)
		first = shared
	}
	s.prevLeaf, s.havePrev = leaf, true

	n := s.p.Levels + 1 - first
	tr.ReadNodes = make([]NodeID, 0, n)
	tr.WriteNodes = make([]NodeID, 0, n)
	for level := first; level <= s.p.Levels; level++ {
		tr.ReadNodes = append(tr.ReadNodes, NodeAt(level, leaf, s.p.Levels))
	}
	for level := s.p.Levels; level >= first; level-- {
		tr.WriteNodes = append(tr.WriteNodes, NodeAt(level, leaf, s.p.Levels))
	}
	return tr
}
