package oram

import (
	"math"
	"testing"

	"doram/internal/xrand"
)

// TestObliviousnessLeafSequenceIndependentOfWorkload checks the protocol's
// core security property on the address stream: the distribution of
// accessed leaves is indistinguishable between two very different request
// patterns (single hot block vs uniform random blocks). An observer of
// the physical addresses learns nothing about the logical stream.
func TestObliviousnessLeafSequenceIndependentOfWorkload(t *testing.T) {
	p := Params{Levels: 6, Z: 4, BlockSize: 64, TopCacheLevels: 1, StashCapacity: 100}
	const rounds = 20000
	nLeaves := p.NumLeaves()

	leafCounts := func(gen func(*Sampler, int) uint64) []float64 {
		s := NewSampler(p, 31337)
		counts := make([]float64, nLeaves)
		for i := 0; i < rounds; i++ {
			counts[gen(s, i)]++
		}
		return counts
	}
	hot := leafCounts(func(s *Sampler, _ int) uint64 { return s.Access(7).Leaf })
	rng := xrand.New(5)
	uniform := leafCounts(func(s *Sampler, _ int) uint64 {
		return s.Access(rng.Uint64n(1000)).Leaf
	})

	// Chi-square style comparison of each distribution against uniform.
	expect := float64(rounds) / float64(nLeaves)
	chi2 := func(counts []float64) float64 {
		var x float64
		for _, c := range counts {
			d := c - expect
			x += d * d / expect
		}
		return x
	}
	// 64 leaves -> 63 degrees of freedom; p=0.001 critical value ~ 103.
	const critical = 103.0
	if c := chi2(hot); c > critical {
		t.Fatalf("hot-block leaf distribution non-uniform: chi2 = %.1f > %.1f", c, critical)
	}
	if c := chi2(uniform); c > critical {
		t.Fatalf("uniform-workload leaf distribution non-uniform: chi2 = %.1f > %.1f", c, critical)
	}
}

// TestObliviousnessConsecutiveLeavesUncorrelated checks that accessing the
// same block twice in a row does not correlate consecutive path choices
// (the remap-before-reuse rule).
func TestObliviousnessConsecutiveLeavesUncorrelated(t *testing.T) {
	p := Params{Levels: 5, Z: 4, BlockSize: 64, TopCacheLevels: 1, StashCapacity: 100}
	s := NewSampler(p, 99)
	const rounds = 30000
	same := 0
	prev := s.Access(3).Leaf
	for i := 1; i < rounds; i++ {
		leaf := s.Access(3).Leaf
		if leaf == prev {
			same++
		}
		prev = leaf
	}
	// With 32 leaves, repeats happen with probability 1/32.
	frac := float64(same) / float64(rounds-1)
	if math.Abs(frac-1.0/32) > 0.01 {
		t.Fatalf("consecutive-leaf repeat rate %.4f, want ~%.4f (1/leaves)", frac, 1.0/32)
	}
}

// TestTraceRevealsNothingAboutOperation checks that read and write
// accesses produce identically shaped traces (the request-type hiding of
// §III-B item 1 at the protocol level).
func TestTraceRevealsNothingAboutOperation(t *testing.T) {
	p := smallParams()
	c := newTestClient(t, p, false)
	_, wTrace, err := c.Access(OpWrite, 5, []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	_, rTrace, err := c.Access(OpRead, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(wTrace.ReadNodes) != len(rTrace.ReadNodes) ||
		len(wTrace.WriteNodes) != len(rTrace.WriteNodes) {
		t.Fatalf("write trace shape (%d/%d) differs from read trace shape (%d/%d)",
			len(wTrace.ReadNodes), len(wTrace.WriteNodes),
			len(rTrace.ReadNodes), len(rTrace.WriteNodes))
	}
}

// TestDummyTraceIndistinguishableFromReal checks that timing-protection
// dummies touch exactly as many nodes as real accesses.
func TestDummyTraceIndistinguishableFromReal(t *testing.T) {
	p := smallParams()
	s := NewSampler(p, 4)
	real := s.Access(12)
	dummy := s.Dummy()
	if len(real.ReadNodes) != len(dummy.ReadNodes) ||
		len(real.WriteNodes) != len(dummy.WriteNodes) {
		t.Fatal("dummy access shape differs from a real access")
	}
}
