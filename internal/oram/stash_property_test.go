package oram

// Randomized stash-occupancy property tests: random parameter draws and
// random read/write streams, asserting after every access that the stash
// respects its occupancy invariants and that data survives the constant
// reshuffling. The seed is logged on failure so a CI hit can be replayed
// locally with DORAM_PROP_SEED and shrunk by hand.

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"doram/internal/oram/backend"
)

// stashPropSeed mirrors addrmap's propSeed: DORAM_PROP_SEED overrides the
// fixed default for replaying CI failures.
func stashPropSeed(t *testing.T) int64 {
	if s := os.Getenv("DORAM_PROP_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("DORAM_PROP_SEED=%q: %v", s, err)
		}
		return v
	}
	return 0x57a5_4b10
}

// TestPropertyStashInvariantsRandomStreams drives random access streams
// against random small trees and checks, after every single access:
//
//   - occupancy never exceeds capacity (overflow must surface as an error,
//     never as silent corruption),
//   - occupancy never exceeds the high-water mark and the mark is
//     monotone non-decreasing,
//   - every read returns the last value written to that address.
func TestPropertyStashInvariantsRandomStreams(t *testing.T) {
	runStashInvariants(t, "")
}

// TestPropertyStashInvariantsAllStrategies repeats the invariant suite
// under every registered eviction strategy: the occupancy and durability
// guarantees are strategy-independent protocol properties.
func TestPropertyStashInvariantsAllStrategies(t *testing.T) {
	for _, name := range backend.Evictions() {
		name := name
		t.Run(name, func(t *testing.T) { runStashInvariants(t, name) })
	}
}

// runStashInvariants drives random access streams against random small
// trees under the named eviction strategy ("" = default) and checks the
// stash invariants after every single access.
func runStashInvariants(t *testing.T, strategy string) {
	seed := stashPropSeed(t)
	r := rand.New(rand.NewSource(seed))
	for caseIdx := 0; caseIdx < 4; caseIdx++ {
		p := Params{
			Levels:         5 + r.Intn(3),
			Z:              4,
			BlockSize:      64,
			TopCacheLevels: r.Intn(3),
			StashCapacity:  300,
		}
		ctx := fmt.Sprintf("replay: DORAM_PROP_SEED=%d strategy %q case %d params %+v",
			seed, strategy, caseIdx, p)
		evict, err := backend.NewEviction(strategy)
		if err != nil {
			t.Fatalf("%s: %v", ctx, err)
		}
		c, err := NewClientWithOptions(p, ClientOptions{
			Storage:  NewMemStorage(p.NumNodes()),
			Key:      testKey,
			WithMAC:  r.Intn(2) == 0,
			Eviction: evict,
			Seed:     r.Uint64(),
		})
		if err != nil {
			t.Fatalf("%s: %v", ctx, err)
		}
		n := p.MaxBlocks() / 2 // paper's 50% utilization rule
		shadow := make(map[uint64][]byte, n)
		prevMax := 0
		for step := 0; step < 1200; step++ {
			addr := r.Uint64() % n
			if r.Intn(2) == 0 {
				val := []byte(fmt.Sprintf("s%06d-a%06d", step, addr))
				if _, _, err := c.Access(OpWrite, addr, val); err != nil {
					t.Fatalf("%s step %d: write %d: %v", ctx, step, addr, err)
				}
				shadow[addr] = val
			} else {
				got, _, err := c.Access(OpRead, addr, nil)
				if err != nil {
					t.Fatalf("%s step %d: read %d: %v", ctx, step, addr, err)
				}
				if want, ok := shadow[addr]; ok && !bytes.Equal(got[:len(want)], want) {
					t.Fatalf("%s step %d: block %d = %q, want %q", ctx, step, addr, got[:len(want)], want)
				}
			}
			if c.StashLen() > p.StashCapacity {
				t.Fatalf("%s step %d: stash occupancy %d exceeds capacity %d",
					ctx, step, c.StashLen(), p.StashCapacity)
			}
			if c.StashLen() > c.StashMax() {
				t.Fatalf("%s step %d: occupancy %d above high-water mark %d",
					ctx, step, c.StashLen(), c.StashMax())
			}
			if c.StashMax() < prevMax {
				t.Fatalf("%s step %d: high-water mark regressed %d -> %d",
					ctx, step, prevMax, c.StashMax())
			}
			prevMax = c.StashMax()
		}
	}
}

// TestEvictionStrategiesDifferential drives one client per registered
// eviction strategy through the same seeded read/write stream and asserts
// every read returns identical bytes across strategies: eviction changes
// only where blocks sit in the tree, never what they contain.
func TestEvictionStrategiesDifferential(t *testing.T) {
	seed := stashPropSeed(t)
	r := rand.New(rand.NewSource(seed ^ 0x_d1ff))
	p := Params{Levels: 7, Z: 4, BlockSize: 64, TopCacheLevels: 2, StashCapacity: 300}
	names := backend.Evictions()
	clients := make([]*Client, len(names))
	for i, name := range names {
		evict, err := backend.NewEviction(name)
		if err != nil {
			t.Fatal(err)
		}
		clients[i], err = NewClientWithOptions(p, ClientOptions{
			Storage:  NewMemStorage(p.NumNodes()),
			Key:      testKey,
			WithMAC:  true,
			Eviction: evict,
			Seed:     12345, // identical seeds: identical remap sequences
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	n := p.MaxBlocks() / 2
	for step := 0; step < 2000; step++ {
		addr := r.Uint64() % n
		if r.Intn(2) == 0 {
			val := []byte(fmt.Sprintf("d%06d-a%06d", step, addr))
			for i, c := range clients {
				if _, _, err := c.Access(OpWrite, addr, val); err != nil {
					t.Fatalf("step %d: %s: write %d: %v", step, names[i], addr, err)
				}
			}
		} else {
			var first []byte
			for i, c := range clients {
				got, _, err := c.Access(OpRead, addr, nil)
				if err != nil {
					t.Fatalf("step %d: %s: read %d: %v", step, names[i], addr, err)
				}
				if i == 0 {
					first = got
				} else if !bytes.Equal(got, first) {
					t.Fatalf("step %d: read %d diverged: %s=%x, %s=%x",
						step, addr, names[0], first, names[i], got)
				}
			}
		}
	}
	for i, c := range clients {
		if c.EvictionName() != names[i] {
			t.Fatalf("client %d reports strategy %q, want %q", i, c.EvictionName(), names[i])
		}
	}
	// The two-path strategy must actually have evicted extra paths.
	for i, name := range names {
		extra := clients[i].ExtraEvictionPaths()
		if name == backend.EvictionDeterministicTwoPath && extra == 0 {
			t.Fatalf("%s evicted no extra paths", name)
		}
		if name != backend.EvictionDeterministicTwoPath && extra != 0 {
			t.Fatalf("%s unexpectedly evicted %d extra paths", name, extra)
		}
	}
}
