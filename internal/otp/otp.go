// Package otp implements the one-time-pad packet protection of D-ORAM
// (§III-B, Eq. 1): the on-chip secure engine and the secure delegator share
// a key K and nonce N0 (negotiated out of band via PKI), and each 72-byte
// BOB packet is XORed with
//
//	OTP = AES(K, N0, SeqNum)
//
// where SeqNum increments per message. Because the pad does not depend on
// packet content, both ends can pregenerate pads; each Path ORAM access
// needs only two (request + response), so the latency cost is negligible —
// the property the paper relies on.
//
// Packets additionally carry an authentication tag (HMAC-SHA256, truncated)
// binding the sequence number, which yields both integrity and replay
// protection (§III-B step 4).
package otp

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// TagSize is the truncated HMAC length appended to sealed packets.
const TagSize = 16

// Errors returned by Open.
var (
	ErrAuth = errors.New("otp: packet authentication failed")
	ErrSize = errors.New("otp: sealed packet too short")
)

// Engine is one endpoint of the CPU<->SD encrypted channel. Two engines
// constructed with the same key and nonce produce matching pad streams;
// each endpoint uses one engine per direction (send and receive) so the
// sequence numbers stay aligned.
type Engine struct {
	block  cipher.Block
	macKey [32]byte
	nonce  uint64
	seq    uint64
}

// NewEngine builds an engine from a 16-byte AES key and the negotiated
// nonce N0. The MAC key is derived from the AES key so callers manage a
// single secret.
func NewEngine(key []byte, nonce uint64) (*Engine, error) {
	if len(key) != 16 {
		return nil, fmt.Errorf("otp: key must be 16 bytes, got %d", len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	e := &Engine{block: block, nonce: nonce}
	// Derive the MAC key: AES_K(nonce || "mac") expanded over two blocks.
	var in [16]byte
	binary.LittleEndian.PutUint64(in[0:8], nonce)
	copy(in[8:], "mackey0")
	e.block.Encrypt(e.macKey[0:16], in[:])
	in[15]++
	e.block.Encrypt(e.macKey[16:32], in[:])
	return e, nil
}

// Seq returns the next sequence number to be used.
func (e *Engine) Seq() uint64 { return e.seq }

// pad writes the OTP for sequence number seq over n bytes.
func (e *Engine) pad(seq uint64, n int) []byte {
	out := make([]byte, 0, (n+15)/16*16)
	var in, enc [16]byte
	binary.LittleEndian.PutUint64(in[0:8], e.nonce)
	binary.LittleEndian.PutUint64(in[8:16], seq)
	for blk := 0; len(out) < n; blk++ {
		// Fold the block counter into the nonce half so multi-block pads
		// stay unique per (nonce, seq, blk).
		var ctr [16]byte
		copy(ctr[:], in[:])
		ctr[7] ^= byte(blk)
		e.block.Encrypt(enc[:], ctr[:])
		out = append(out, enc[:]...)
	}
	return out[:n]
}

// Seal encrypts packet with the current sequence number's pad and appends
// an authentication tag. The engine's sequence number advances.
func (e *Engine) Seal(packet []byte) []byte {
	seq := e.seq
	e.seq++
	pad := e.pad(seq, len(packet))
	sealed := make([]byte, len(packet)+TagSize)
	for i := range packet {
		sealed[i] = packet[i] ^ pad[i]
	}
	tag := e.tag(seq, sealed[:len(packet)])
	copy(sealed[len(packet):], tag[:TagSize])
	return sealed
}

// Open authenticates and decrypts a sealed packet produced by the peer
// engine at the same sequence number. On success the engine's sequence
// number advances; on failure it does not, so a replayed or corrupted
// packet cannot desynchronize the channel.
func (e *Engine) Open(sealed []byte) ([]byte, error) {
	if len(sealed) < TagSize {
		return nil, ErrSize
	}
	body := sealed[:len(sealed)-TagSize]
	want := e.tag(e.seq, body)
	if !hmac.Equal(want[:TagSize], sealed[len(body):]) {
		return nil, ErrAuth
	}
	pad := e.pad(e.seq, len(body))
	e.seq++
	out := make([]byte, len(body))
	for i := range body {
		out[i] = body[i] ^ pad[i]
	}
	return out, nil
}

// tag computes the packet MAC binding the sequence number.
func (e *Engine) tag(seq uint64, body []byte) []byte {
	mac := hmac.New(sha256.New, e.macKey[:])
	var seqb [8]byte
	binary.LittleEndian.PutUint64(seqb[:], seq)
	mac.Write(seqb[:])
	mac.Write(body)
	return mac.Sum(nil)
}
