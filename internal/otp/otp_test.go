package otp

import (
	"bytes"
	"testing"
	"testing/quick"
)

func pair(t *testing.T) (*Engine, *Engine) {
	t.Helper()
	key := []byte("0123456789abcdef")
	a, err := NewEngine(key, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEngine(key, 99)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestSealOpenRoundTrip(t *testing.T) {
	tx, rx := pair(t)
	msg := make([]byte, 72)
	for i := range msg {
		msg[i] = byte(i)
	}
	got, err := rx.Open(tx.Seal(msg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("round trip mismatch")
	}
}

func TestSequenceAdvancesInLockstep(t *testing.T) {
	tx, rx := pair(t)
	for i := 0; i < 20; i++ {
		msg := []byte{byte(i), 1, 2, 3}
		got, err := rx.Open(tx.Seal(msg))
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("message %d corrupted", i)
		}
	}
	if tx.Seq() != 20 || rx.Seq() != 20 {
		t.Fatalf("seq = %d/%d, want 20/20", tx.Seq(), rx.Seq())
	}
}

func TestReplayRejected(t *testing.T) {
	tx, rx := pair(t)
	sealed := tx.Seal([]byte("hello, secure world!"))
	if _, err := rx.Open(sealed); err != nil {
		t.Fatal(err)
	}
	if _, err := rx.Open(sealed); err != ErrAuth {
		t.Fatalf("replayed packet: err = %v, want ErrAuth", err)
	}
}

func TestTamperRejectedAndDoesNotDesync(t *testing.T) {
	tx, rx := pair(t)
	sealed := tx.Seal([]byte("packet one"))
	bad := append([]byte(nil), sealed...)
	bad[0] ^= 0x80
	if _, err := rx.Open(bad); err != ErrAuth {
		t.Fatalf("tampered packet: err = %v, want ErrAuth", err)
	}
	// The genuine packet must still open: failed Open must not advance seq.
	if _, err := rx.Open(sealed); err != nil {
		t.Fatalf("genuine packet after tamper attempt: %v", err)
	}
}

func TestTruncatedRejected(t *testing.T) {
	_, rx := pair(t)
	if _, err := rx.Open(make([]byte, TagSize-1)); err != ErrSize {
		t.Fatalf("err = %v, want ErrSize", err)
	}
}

func TestCiphertextDiffersFromPlaintextAndAcrossSeq(t *testing.T) {
	tx, _ := pair(t)
	msg := make([]byte, 72) // all zeros: ciphertext equals the raw pad
	c1 := tx.Seal(msg)
	c2 := tx.Seal(msg)
	if bytes.Equal(c1[:72], msg) {
		t.Fatal("ciphertext equals plaintext")
	}
	if bytes.Equal(c1[:72], c2[:72]) {
		t.Fatal("identical pads across sequence numbers: OTP reuse")
	}
}

func TestWrongNonceFails(t *testing.T) {
	key := []byte("0123456789abcdef")
	tx, _ := NewEngine(key, 1)
	rx, _ := NewEngine(key, 2)
	if _, err := rx.Open(tx.Seal([]byte("msg"))); err == nil {
		t.Fatal("packet accepted across mismatched nonces")
	}
}

func TestKeyLengthValidation(t *testing.T) {
	if _, err := NewEngine([]byte("short"), 0); err == nil {
		t.Fatal("short key accepted")
	}
}

func TestPropertyRoundTripAllSizes(t *testing.T) {
	tx, rx := pair(t)
	f := func(msg []byte) bool {
		got, err := rx.Open(tx.Seal(msg))
		return err == nil && bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// FuzzOpen ensures arbitrary ciphertexts never panic and never decrypt
// successfully without the right pad and tag.
func FuzzOpen(f *testing.F) {
	f.Add([]byte("some random bytes that are long enough"))
	f.Add(make([]byte, TagSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		rx, err := NewEngine([]byte("0123456789abcdef"), 5)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rx.Open(data); err == nil {
			// A forged packet passing authentication would be a break;
			// the chance of hitting a valid 16-byte tag by fuzzing is nil.
			t.Fatalf("forged packet of %d bytes accepted", len(data))
		}
	})
}
