// Package secmem models the secure-memory execution comparator of Figure 4:
// ObfusMem / InvisiMem-style protection where both the processor and the
// memory module are trusted and only the channel is protected. Reads and
// writes are shaped identically, and with multiple channels every access
// sends dummy requests to the channels that do not hold the data, hiding
// the accessed channel (§II-B2, §II-C).
//
// The model captures the property Figure 4 depends on: each S-App access
// multiplies into one read-shaped and one write-shaped transaction on
// every channel, which is cheap for the S-App (parallel) but contends with
// co-running NS-Apps on all channels.
package secmem

import (
	"doram/internal/addrmap"
	"doram/internal/clock"
	"doram/internal/mc"
	"doram/internal/stats"
)

// Config tunes the secure-memory model.
type Config struct {
	// CryptoCycles is the per-access packet encryption/authentication
	// latency added to the S-App's critical path (the ~10% overhead the
	// paper cites from ObfusMem).
	CryptoCycles uint64
	// ShapeWrites controls whether each access also issues a write-shaped
	// transaction per channel (read/write indistinguishability).
	ShapeWrites bool
}

// DefaultConfig returns the model used in the evaluation.
func DefaultConfig() Config {
	return Config{CryptoCycles: 32, ShapeWrites: true}
}

// Stats aggregates the model's activity.
type Stats struct {
	Accesses   stats.Counter
	DummyReqs  stats.Counter
	Rejections stats.Counter
}

// SecMem is the S-App's memory port under the secure-memory model. It
// implements cpu.Port.
type SecMem struct {
	cfg    Config
	mcs    []*mc.Controller
	mapper *addrmap.Mapper
	appID  int
	stats  Stats
}

// New builds the port over the direct-attached channel controllers. The
// mapper spreads the S-App's lines across all channels (bus indices must
// match the mcs slice).
func New(cfg Config, mcs []*mc.Controller, mapper *addrmap.Mapper, appID int) *SecMem {
	if len(mcs) == 0 {
		panic("secmem: need at least one channel")
	}
	return &SecMem{cfg: cfg, mcs: mcs, mapper: mapper, appID: appID}
}

// Stats returns the model's counters.
func (s *SecMem) Stats() *Stats { return &s.stats }

// Access implements cpu.Port: the real transaction goes to the channel
// holding the line; every other channel receives a dummy of identical
// shape, and (with ShapeWrites) a write-shaped transaction follows on all
// channels so request types stay hidden.
func (s *SecMem) Access(write bool, addr uint64, now uint64, onDone func(uint64)) bool {
	real := s.mapper.Map(addr)
	memNow := clock.ToMem(now)

	// Admission check on the real channel only; dummies are best-effort
	// (dropping one under backlog does not change interference trends).
	realReq := &mc.Request{Op: mc.OpRead, Coord: real, AppID: s.appID, Secure: true}
	if !write && onDone != nil {
		crypto := s.cfg.CryptoCycles
		realReq.OnComplete = func(_ *mc.Request, memDone uint64) {
			onDone(clock.ToCPU(memDone) + crypto)
		}
	}
	if !s.mcs[real.Bus].Enqueue(realReq, memNow) {
		s.stats.Rejections.Inc()
		return false
	}
	s.stats.Accesses.Inc()

	for bus := range s.mcs {
		if bus != real.Bus {
			dummy := real
			dummy.Bus = bus
			if s.mcs[bus].Enqueue(&mc.Request{Op: mc.OpRead, Coord: dummy, AppID: s.appID, Secure: true}, memNow) {
				s.stats.DummyReqs.Inc()
			}
		}
		if s.cfg.ShapeWrites {
			// ObfusMem writes back the (re-encrypted) line it accessed, so
			// the shaped write targets the same coordinate; a prompt
			// re-read may forward from the write queue, exactly as the
			// hardware would.
			wc := real
			wc.Bus = bus
			if s.mcs[bus].Enqueue(&mc.Request{Op: mc.OpWrite, Coord: wc, AppID: s.appID, Secure: true}, memNow) && bus != real.Bus {
				s.stats.DummyReqs.Inc()
			}
		}
	}
	return true
}
