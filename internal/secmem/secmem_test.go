package secmem

import (
	"testing"

	"doram/internal/addrmap"
	"doram/internal/dram"
	"doram/internal/mc"
)

func newRig(t *testing.T, cfg Config) (*SecMem, []*mc.Controller) {
	t.Helper()
	mcCfg := mc.DefaultConfig()
	mcCfg.RefreshEnabled = false
	var mcs []*mc.Controller
	for i := 0; i < 4; i++ {
		mcs = append(mcs, mc.New(dram.NewChannel(dram.DDR31600(), 1, 8), mcCfg))
	}
	geo := addrmap.Geometry{Ranks: 1, Banks: 8, RowBytes: 8192, LineBytes: 64}
	mapper := addrmap.New(geo, addrmap.OpenPage, []int{0, 1, 2, 3})
	return New(cfg, mcs, mapper, 0), mcs
}

func tick(mcs []*mc.Controller, from, n uint64) {
	for now := from; now < from+n; now++ {
		for _, c := range mcs {
			c.Tick(now)
		}
	}
}

func TestReadCompletesWithCryptoOverhead(t *testing.T) {
	cfg := DefaultConfig()
	s, mcs := newRig(t, cfg)
	var done uint64
	if !s.Access(false, 0x1000, 0, func(c uint64) { done = c }) {
		t.Fatal("access rejected")
	}
	tick(mcs, 0, 500)
	if done == 0 {
		t.Fatal("read never completed")
	}
	// Completion includes the crypto latency on top of the DRAM access.
	tm := dram.DDR31600()
	min := 4*(tm.RCD+tm.CL+tm.BurstCycles) + cfg.CryptoCycles
	if done < min {
		t.Fatalf("done at %d, below physical floor %d", done, min)
	}
}

func TestEveryChannelSeesTraffic(t *testing.T) {
	s, mcs := newRig(t, DefaultConfig())
	for i := 0; i < 8; i++ {
		s.Access(i%2 == 0, uint64(i)*64, 0, nil)
	}
	tick(mcs, 0, 4000)
	// Shape hiding: reads and writes on all four channels regardless of
	// where the real lines live.
	for i, c := range mcs {
		if c.Stats().ReadsDone.Value() == 0 {
			t.Fatalf("channel %d saw no read-shaped traffic", i)
		}
		if c.Stats().WritesDone.Value() == 0 {
			t.Fatalf("channel %d saw no write-shaped traffic", i)
		}
	}
	if s.Stats().DummyReqs.Value() == 0 {
		t.Fatal("no dummy requests generated")
	}
}

func TestTrafficAmplification(t *testing.T) {
	s, mcs := newRig(t, DefaultConfig())
	const n = 16
	for i := 0; i < n; i++ {
		if !s.Access(false, uint64(i)*64*1024, 0, nil) {
			t.Fatalf("access %d rejected", i)
		}
	}
	tick(mcs, 0, 10000)
	var total uint64
	for _, c := range mcs {
		total += c.Stats().ReadsDone.Value() + c.Stats().WritesDone.Value()
	}
	// Each access becomes 4 read-shaped + 4 write-shaped transactions.
	if total < n*7 {
		t.Fatalf("total transactions %d, want ~%d (8 per access)", total, n*8)
	}
}

func TestRereadForwardsFromWriteback(t *testing.T) {
	s, mcs := newRig(t, DefaultConfig())
	// The shaped writeback targets the accessed line, so a prompt re-read
	// forwards from the write queue — as the memory controller would.
	s.Access(false, 0x2000, 0, nil)
	var done uint64
	s.Access(false, 0x2000, 1, func(c uint64) { done = c })
	if done == 0 {
		tick(mcs, 0, 1000)
	}
	if done == 0 {
		t.Fatal("re-read never completed")
	}
	// A read to a different line must not forward.
	var other uint64
	s.Access(false, 0x9000, 2, func(c uint64) { other = c })
	if other != 0 {
		t.Fatal("unrelated read forwarded from a shaped write")
	}
	tick(mcs, 0, 2000)
	if other == 0 {
		t.Fatal("unrelated read never completed")
	}
}

func TestBackPressureWhenRealChannelFull(t *testing.T) {
	cfg := DefaultConfig()
	mcCfg := mc.DefaultConfig()
	mcCfg.RefreshEnabled = false
	mcCfg.ReadQueueCap = 2
	var mcs []*mc.Controller
	for i := 0; i < 4; i++ {
		mcs = append(mcs, mc.New(dram.NewChannel(dram.DDR31600(), 1, 8), mcCfg))
	}
	geo := addrmap.Geometry{Ranks: 1, Banks: 8, RowBytes: 8192, LineBytes: 64}
	s := New(cfg, mcs, addrmap.New(geo, addrmap.OpenPage, []int{0, 1, 2, 3}), 0)
	accepted := 0
	for i := 0; i < 20; i++ {
		// All to channel 0 (line stride 4 channels): line%4==0.
		if s.Access(false, uint64(i)*4*64, 0, nil) {
			accepted++
		}
	}
	if accepted > 2 {
		t.Fatalf("accepted %d reads into a 2-deep queue", accepted)
	}
	if s.Stats().Rejections.Value() == 0 {
		t.Fatal("rejections not counted")
	}
}
