package simsvc

import (
	"container/list"

	"doram"
)

// resultCache is an LRU map from canonical spec hash to completed result.
// Soundness rests on the simulator's determinism: equal canonical specs
// (same knobs, same seed) produce bit-identical results — the differential
// suite enforces replay equality — so serving a cached result is
// indistinguishable from re-simulating. Results are immutable once
// published; hits hand out the shared pointer.
//
// Not safe for concurrent use: the owning Service calls it under its lock.
type resultCache struct {
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	hash string
	res  *doram.SimResult
}

// newResultCache builds a cache holding up to cap results; cap <= 0
// disables caching entirely (every get misses, every put is dropped).
func newResultCache(cap int) *resultCache {
	return &resultCache{cap: cap, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *resultCache) get(hash string) (*doram.SimResult, bool) {
	el, ok := c.items[hash]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

func (c *resultCache) put(hash string, res *doram.SimResult) {
	if c.cap <= 0 {
		return
	}
	if el, ok := c.items[hash]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).res = res
		return
	}
	c.items[hash] = c.ll.PushFront(&cacheEntry{hash: hash, res: res})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).hash)
	}
}

func (c *resultCache) len() int { return c.ll.Len() }
