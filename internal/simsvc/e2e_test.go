package simsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"reflect"
	"strconv"
	"testing"
	"time"

	"doram"
)

// e2eServer runs a Service behind a real TCP listener, the way cmd/doramd
// serves it — requests cross the loopback socket, not an in-process stub.
type e2eServer struct {
	svc  *Service
	srv  *http.Server
	base string
}

func startE2E(t *testing.T, cfg Config) *e2eServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	svc := New(cfg)
	srv := &http.Server{Handler: svc.Handler()}
	go srv.Serve(ln)
	e := &e2eServer{svc: svc, srv: srv, base: "http://" + ln.Addr().String()}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		svc.Close(ctx)
	})
	return e
}

func (e *e2eServer) get(t *testing.T, path string, out any) int {
	t.Helper()
	resp, err := http.Get(e.base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: decoding %q: %v", path, body, err)
		}
	}
	return resp.StatusCode
}

func (e *e2eServer) post(t *testing.T, path string, body []byte, out any) (int, http.Header) {
	t.Helper()
	resp, err := http.Post(e.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: reading body: %v", path, err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("POST %s: decoding %q: %v", path, data, err)
		}
	}
	return resp.StatusCode, resp.Header
}

func (e *e2eServer) waitDone(t *testing.T, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var st JobStatus
		if code := e.get(t, "/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("status %s: HTTP %d", id, code)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobStatus{}
}

func (e *e2eServer) varzCounter(t *testing.T, name string) uint64 {
	t.Helper()
	var dump struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if code := e.get(t, "/varz", &dump); code != http.StatusOK {
		t.Fatalf("varz: HTTP %d", code)
	}
	v, ok := dump.Counters[name]
	if !ok {
		t.Fatalf("varz counter %q missing (have %v)", name, dump.Counters)
	}
	return v
}

// TestE2ESweepOverTCP is the acceptance-criterion test: a real doramd-style
// server on a TCP socket runs a sweep — including a duplicate spec — and
// the fetched result matches an in-process doram.Simulate of the same spec
// field for field, with the duplicate served without a second simulation.
func TestE2ESweepOverTCP(t *testing.T) {
	// One worker makes the dedup observable: spec A runs while its
	// duplicate arrives, so the duplicate must coalesce, and sim.runs
	// stays at 2 for 3 submitted + 1 resubmitted jobs.
	e := startE2E(t, Config{Workers: 1})

	if code := e.get(t, "/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", code)
	}

	specA := `{"scheme":"d-oram","benchmark":"face","k":1,"trace_len":2000}`
	specB := `{"scheme":"path-oram","benchmark":"libq","trace_len":2000}`
	sweep := fmt.Sprintf(`{"specs":[%s,%s,%s]}`, specA, specB, specA)

	var sr SweepResponse
	code, _ := e.post(t, "/v1/sweeps", []byte(sweep), &sr)
	if code != http.StatusAccepted {
		t.Fatalf("sweep: HTTP %d", code)
	}
	if sr.Rejected != 0 || len(sr.Jobs) != 3 {
		t.Fatalf("sweep response: %d jobs, %d rejected", len(sr.Jobs), sr.Rejected)
	}
	if sr.Jobs[0].SpecHash != sr.Jobs[2].SpecHash {
		t.Fatalf("duplicate specs hashed differently")
	}
	if sr.Jobs[0].SpecHash == sr.Jobs[1].SpecHash {
		t.Fatalf("distinct specs hashed identically")
	}
	if !sr.Jobs[2].Coalesced && !sr.Jobs[2].CacheHit {
		t.Errorf("duplicate spec neither coalesced nor cache-hit: %+v", sr.Jobs[2])
	}

	// Every job completes, and job A's history shows the full lifecycle.
	stA := e.waitDone(t, sr.Jobs[0].ID)
	stB := e.waitDone(t, sr.Jobs[1].ID)
	stDup := e.waitDone(t, sr.Jobs[2].ID)
	for _, st := range []JobStatus{stA, stB, stDup} {
		if st.State != StateDone {
			t.Fatalf("job %s ended %s (%s)", st.ID, st.State, st.Error)
		}
	}
	var states []State
	for _, tr := range stA.History {
		states = append(states, tr.State)
	}
	if !reflect.DeepEqual(states, []State{StateQueued, StateRunning, StateDone}) {
		t.Errorf("job A lifecycle %v, want queued -> running -> done", states)
	}

	// The served result is field-for-field identical to an in-process run.
	var remote doram.SimResult
	if code := e.get(t, "/v1/jobs/"+sr.Jobs[0].ID+"/result", &remote); code != http.StatusOK {
		t.Fatalf("result A: HTTP %d", code)
	}
	spec, err := doram.ParamsFromJSON([]byte(specA))
	if err != nil {
		t.Fatalf("parse spec A: %v", err)
	}
	local, err := doram.Simulate(spec.SimConfig())
	if err != nil {
		t.Fatalf("in-process simulate: %v", err)
	}
	remoteJSON, _ := json.Marshal(&remote)
	localJSON, _ := json.Marshal(local)
	if !bytes.Equal(remoteJSON, localJSON) {
		t.Errorf("served result differs from in-process Simulate:\nremote: %s\nlocal:  %s", remoteJSON, localJSON)
	}

	// A post-completion resubmission is a cache hit: terminal on arrival,
	// the cache-hit counter increments, and no further simulation runs.
	runsBefore := e.varzCounter(t, "simsvc.sim.runs")
	hitsBefore := e.varzCounter(t, "simsvc.cache.hits")
	var resub JobStatus
	code, _ = e.post(t, "/v1/jobs", []byte(specA), &resub)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit: HTTP %d", code)
	}
	if resub.State != StateDone || !resub.CacheHit {
		t.Errorf("resubmit state %s cache_hit=%v, want cached done", resub.State, resub.CacheHit)
	}
	if hits := e.varzCounter(t, "simsvc.cache.hits"); hits != hitsBefore+1 {
		t.Errorf("cache.hits went %d -> %d, want +1", hitsBefore, hits)
	}
	if runs := e.varzCounter(t, "simsvc.sim.runs"); runs != runsBefore {
		t.Errorf("sim.runs went %d -> %d on a cache hit", runsBefore, runs)
	}
	if runs := e.varzCounter(t, "simsvc.sim.runs"); runs != 2 {
		t.Errorf("sim.runs = %d for {A, B, dup A, resub A}, want 2", runs)
	}

	// The duplicate's result is byte-identical to the leader's.
	var dupRes doram.SimResult
	if code := e.get(t, "/v1/jobs/"+sr.Jobs[2].ID+"/result", &dupRes); code != http.StatusOK {
		t.Fatalf("result dup: HTTP %d", code)
	}
	dupJSON, _ := json.Marshal(&dupRes)
	if !bytes.Equal(dupJSON, remoteJSON) {
		t.Errorf("coalesced duplicate's result differs from leader's")
	}
}

// TestE2EErrorMapping exercises the HTTP error surface: invalid specs,
// unknown jobs, premature result fetches, queue-full backpressure with a
// Retry-After header, and metrics for a job that enabled them.
func TestE2EErrorMapping(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	e := startE2E(t, Config{Workers: 1, QueueDepth: 1})
	e.svc.runSim = blockingSim(started, release)
	defer close(release)

	if code, _ := e.post(t, "/v1/jobs", []byte(`{"scheme":"quantum","benchmark":"face"}`), nil); code != http.StatusBadRequest {
		t.Errorf("invalid scheme: HTTP %d, want 400", code)
	}
	if code, _ := e.post(t, "/v1/jobs", []byte(`{"scheme":"d-oram","benchmark":"face","splitk":1}`), nil); code != http.StatusBadRequest {
		t.Errorf("unknown field: HTTP %d, want 400", code)
	}
	if code := e.get(t, "/v1/jobs/j-99999999", nil); code != http.StatusNotFound {
		t.Errorf("unknown job: HTTP %d, want 404", code)
	}

	// Fill the worker and the queue, then trip backpressure.
	var running JobStatus
	if code, _ := e.post(t, "/v1/jobs", []byte(`{"scheme":"d-oram","benchmark":"face","k":1,"seed":1}`), &running); code != http.StatusAccepted {
		t.Fatalf("submit 1: HTTP %d", code)
	}
	<-started
	if code, _ := e.post(t, "/v1/jobs", []byte(`{"scheme":"d-oram","benchmark":"face","k":1,"seed":2}`), nil); code != http.StatusAccepted {
		t.Fatalf("submit 2: HTTP %d", code)
	}
	code, hdr := e.post(t, "/v1/jobs", []byte(`{"scheme":"d-oram","benchmark":"face","k":1,"seed":3}`), nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("queue full: HTTP %d, want 429", code)
	}
	if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("queue full Retry-After = %q, want a positive integer", hdr.Get("Retry-After"))
	}

	// A result fetched before completion is a 409 conflict.
	if code := e.get(t, "/v1/jobs/"+running.ID+"/result", nil); code != http.StatusConflict {
		t.Errorf("premature result: HTTP %d, want 409", code)
	}
	// Cancel over HTTP reflects the new state in the response.
	var cancelled JobStatus
	if code, _ := e.post(t, "/v1/jobs/"+running.ID+"/cancel", nil, &cancelled); code != http.StatusOK {
		t.Errorf("cancel: HTTP %d", code)
	}
	e.waitDone(t, running.ID)
}

// TestE2EMetricsEndpoint: a spec with metrics enabled serves its dump on
// /v1/jobs/{id}/metrics; one without gets a 404 explaining why.
func TestE2EMetricsEndpoint(t *testing.T) {
	e := startE2E(t, Config{Workers: 1})

	var withM JobStatus
	if code, _ := e.post(t, "/v1/jobs", []byte(`{"scheme":"d-oram","benchmark":"face","k":1,"trace_len":2000,"metrics":true}`), &withM); code != http.StatusAccepted {
		t.Fatalf("submit metrics job: HTTP %d", code)
	}
	if st := e.waitDone(t, withM.ID); st.State != StateDone {
		t.Fatalf("metrics job ended %s (%s)", st.State, st.Error)
	}
	var dump struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if code := e.get(t, "/v1/jobs/"+withM.ID+"/metrics", &dump); code != http.StatusOK {
		t.Fatalf("metrics fetch: HTTP %d", code)
	}
	if len(dump.Counters) == 0 {
		t.Errorf("metrics dump has no counters")
	}

	var withoutM JobStatus
	if code, _ := e.post(t, "/v1/jobs", []byte(`{"scheme":"d-oram","benchmark":"face","k":1,"trace_len":2000}`), &withoutM); code != http.StatusAccepted {
		t.Fatalf("submit plain job: HTTP %d", code)
	}
	e.waitDone(t, withoutM.ID)
	if code := e.get(t, "/v1/jobs/"+withoutM.ID+"/metrics", nil); code != http.StatusNotFound {
		t.Errorf("metrics for metrics-less job: HTTP %d, want 404", code)
	}
}
