package simsvc

import (
	"sync"
	"time"
)

// Event is one serving-plane occurrence: a job state transition, or a
// service lifecycle marker (drain). Every event carries the service-wide
// load gauges at publish time, so a consumer tailing the stream sees queue
// depth and sweep progress without polling /varz. Seq is a strictly
// increasing per-bus sequence number — the SSE event id, and the resume
// cursor for Last-Event-ID reconnects.
type Event struct {
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	// Kind is "job" for job transitions, "service" for lifecycle markers.
	Kind string `json:"kind"`
	// Node is the origin worker on a cluster-merged stream ("" locally).
	Node string `json:"node,omitempty"`

	JobID string `json:"job_id,omitempty"`
	State State  `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
	// Message annotates service-kind events ("draining", ...).
	Message   string `json:"message,omitempty"`
	CacheHit  bool   `json:"cache_hit,omitempty"`
	Coalesced bool   `json:"coalesced,omitempty"`

	QueueDepth int    `json:"queue_depth"`
	Running    int    `json:"running"`
	Completed  uint64 `json:"completed"`
}

// Event kinds.
const (
	EventJob     = "job"
	EventService = "service"
)

// DefaultEventHistory is the bus's replay-ring size when Config.EventHistory
// is unset: late subscribers and Last-Event-ID reconnects can recover this
// many events before the stream restarts from live.
const DefaultEventHistory = 1024

// EventBus fans events out to subscribers and keeps a bounded replay ring
// for resume. Publishing never blocks: a subscriber that stops draining its
// channel is dropped (channel closed), and recovers by resubscribing from
// its last seen sequence number — exactly the SSE reconnect path.
type EventBus struct {
	mu      sync.Mutex
	seq     uint64
	ring    []Event // bounded history, oldest first
	ringCap int
	subs    map[*Subscription]struct{}
	closed  bool
}

// NewEventBus builds a bus keeping the given number of events for resume
// (0 means DefaultEventHistory).
func NewEventBus(history int) *EventBus {
	if history <= 0 {
		history = DefaultEventHistory
	}
	return &EventBus{ringCap: history, subs: make(map[*Subscription]struct{})}
}

// Subscription is one subscriber's live feed. Events (replayed then live)
// arrive on C; the channel closes when the bus closes, the subscriber is
// dropped for not draining, or Close is called.
type Subscription struct {
	C   <-chan Event
	ch  chan Event
	bus *EventBus
}

// Close detaches the subscription. Idempotent, safe concurrently with
// publishes.
func (s *Subscription) Close() {
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	s.bus.dropLocked(s)
}

func (b *EventBus) dropLocked(s *Subscription) {
	if _, ok := b.subs[s]; ok {
		delete(b.subs, s)
		close(s.ch)
	}
}

// Subscribe returns a feed of every event with Seq > after, replaying from
// the ring first. An `after` older than the ring simply starts at the
// oldest retained event (the gap is unrecoverable; SSE clients notice via
// the sequence jump). The channel is buffered to hold the full replay plus
// a live margin; consumers must drain promptly or be dropped.
func (b *EventBus) Subscribe(after uint64) *Subscription {
	b.mu.Lock()
	defer b.mu.Unlock()
	replay := make([]Event, 0, len(b.ring))
	for _, ev := range b.ring {
		if ev.Seq > after {
			replay = append(replay, ev)
		}
	}
	ch := make(chan Event, len(replay)+b.ringCap)
	for _, ev := range replay {
		ch <- ev
	}
	s := &Subscription{C: ch, ch: ch, bus: b}
	if b.closed {
		close(ch)
		return s
	}
	b.subs[s] = struct{}{}
	return s
}

// Publish assigns the event its sequence number, appends it to the replay
// ring and fans it out. Returns the stamped event. Publishing on a closed
// bus is a no-op (events during shutdown have nobody left to tell).
func (b *EventBus) Publish(ev Event) Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ev
	}
	b.seq++
	ev.Seq = b.seq
	if len(b.ring) == b.ringCap {
		b.ring = b.ring[1:]
	}
	b.ring = append(b.ring, ev)
	for s := range b.subs {
		select {
		case s.ch <- ev:
		default:
			// Not draining; drop it. The closed channel tells the SSE
			// handler to end the response, and the client reconnects with
			// Last-Event-ID to resume from the ring.
			b.dropLocked(s)
		}
	}
	return ev
}

// LastSeq returns the most recently assigned sequence number.
func (b *EventBus) LastSeq() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// Close ends the bus: every subscriber's channel closes after the events
// already delivered, and later publishes are dropped.
func (b *EventBus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for s := range b.subs {
		b.dropLocked(s)
	}
}
