package simsvc

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"doram"
	"doram/internal/metrics"
)

// Handler returns the service's HTTP/JSON API:
//
//	POST /v1/jobs             submit one job spec        → JobStatus
//	POST /v1/sweeps           submit a batch of specs    → SweepResponse
//	GET  /v1/jobs/{id}        job status snapshot        → JobStatus
//	GET  /v1/jobs/{id}/result finished job's result      → doram.SimResult
//	GET  /v1/jobs/{id}/metrics finished job's metric dump → metrics.Dump
//	POST /v1/jobs/{id}/cancel request cancellation       → JobStatus
//	GET  /healthz             liveness (503 once draining)
//	GET  /varz                metric registry dump (JSON)
//	GET  /metrics             Prometheus text exposition of the same dump
//	GET  /events              live service-wide SSE event stream
//	GET  /v1/jobs/{id}/events SSE stream filtered to one job
//
// Service errors map onto status codes by kind: invalid specs → 400,
// unknown jobs → 404, queue-full → 429 with a Retry-After header,
// draining → 503, state conflicts → 409, failed jobs → 500.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /v1/sweeps", s.handleSweep)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /varz", s.handleVarz)
	mux.HandleFunc("GET /metrics", s.handlePrometheus)
	mux.HandleFunc("GET /events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	return mux
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) // a write error means the client hung up; nothing to do
}

// writeError maps a service error to its transport representation.
// retryAfterSecs renders d as a Retry-After header value in whole seconds,
// clamped to at least 1: a sub-second backpressure hint would round to "0",
// which seconds-form parsers (including this repo's retryAfterFrom and
// doramctl) treat as absent and replace with their own default.
func retryAfterSecs(d time.Duration) string {
	secs := int(d.Seconds() + 0.5)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func writeError(w http.ResponseWriter, err error) {
	var se *Error
	if !errors.As(err, &se) {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	code := http.StatusInternalServerError
	switch se.Kind {
	case ErrInvalid:
		code = http.StatusBadRequest
	case ErrNotFound:
		code = http.StatusNotFound
	case ErrQueueFull:
		code = http.StatusTooManyRequests
		w.Header().Set("Retry-After", retryAfterSecs(se.RetryAfter))
	case ErrDraining:
		code = http.StatusServiceUnavailable
	case ErrConflict:
		code = http.StatusConflict
	case ErrFailed:
		code = http.StatusInternalServerError
	}
	writeJSON(w, code, apiError{Error: se.Msg})
}

// maxSpecBytes bounds request bodies; job specs are small JSON documents.
const maxSpecBytes = 1 << 20

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes))
	if err != nil {
		writeError(w, &Error{Kind: ErrInvalid, Msg: fmt.Sprintf("simsvc: reading spec: %v", err)})
		return
	}
	spec, err := doram.ParamsFromJSON(body)
	if err != nil {
		writeError(w, &Error{Kind: ErrInvalid, Msg: err.Error()})
		return
	}
	job, err := s.Submit(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.Status())
}

// SweepRequest is a batch submission: one spec per element.
type SweepRequest struct {
	Specs []json.RawMessage `json:"specs"`
}

// SweepResponse reports per-spec outcomes in request order. Jobs holds a
// status for every accepted spec; Errors holds a message for every
// rejected one (empty string for accepted slots), and Rejected counts
// them. A partially rejected sweep returns 429 when any rejection was
// backpressure, else 400.
type SweepResponse struct {
	Jobs     []*JobStatus `json:"jobs"`
	Errors   []string     `json:"errors,omitempty"`
	Rejected int          `json:"rejected"`
}

func (s *Service) handleSweep(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes))
	if err != nil {
		writeError(w, &Error{Kind: ErrInvalid, Msg: fmt.Sprintf("simsvc: reading sweep: %v", err)})
		return
	}
	var req SweepRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, &Error{Kind: ErrInvalid, Msg: fmt.Sprintf("simsvc: decoding sweep: %v", err)})
		return
	}
	if len(req.Specs) == 0 {
		writeError(w, &Error{Kind: ErrInvalid, Msg: "simsvc: sweep has no specs"})
		return
	}
	resp := SweepResponse{
		Jobs:   make([]*JobStatus, len(req.Specs)),
		Errors: make([]string, len(req.Specs)),
	}
	backpressured := false
	var retryAfter string
	for i, raw := range req.Specs {
		spec, err := doram.ParamsFromJSON(raw)
		if err != nil {
			resp.Errors[i] = err.Error()
			resp.Rejected++
			continue
		}
		job, err := s.Submit(spec)
		if err != nil {
			resp.Errors[i] = err.Error()
			resp.Rejected++
			var se *Error
			if errors.As(err, &se) && se.Kind == ErrQueueFull {
				backpressured = true
				retryAfter = retryAfterSecs(se.RetryAfter)
			}
			continue
		}
		st := job.Status()
		resp.Jobs[i] = &st
	}
	code := http.StatusAccepted
	switch {
	case backpressured:
		code = http.StatusTooManyRequests
		w.Header().Set("Retry-After", retryAfter)
	case resp.Rejected == len(req.Specs):
		code = http.StatusBadRequest
	case resp.Rejected > 0:
		code = http.StatusAccepted // partial success still accepted
	}
	if resp.Rejected == 0 {
		resp.Errors = nil
	}
	writeJSON(w, code, resp)
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	res, err := s.Result(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	dump, err := s.Metrics(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, dump)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.Cancel(id); err != nil {
		writeError(w, err)
		return
	}
	st, err := s.Status(id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Service) handleVarz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.dump().WriteJSON(w); err != nil {
		// Header already sent; nothing recoverable.
		return
	}
}

func (s *Service) handlePrometheus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", metrics.PrometheusContentType)
	s.dump().WritePrometheus(w) // a write error means the scraper hung up
}

func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	ServeEventStream(w, r, s.bus, StreamOptions{
		Heartbeat: s.cfg.SSEHeartbeat,
		After:     s.cfg.After,
	})
}

func (s *Service) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.Status(id); err != nil {
		writeError(w, err) // 404 before committing to a stream
		return
	}
	ServeEventStream(w, r, s.bus, StreamOptions{
		JobID:     id,
		Heartbeat: s.cfg.SSEHeartbeat,
		After:     s.cfg.After,
		Terminal:  s.terminalEvent,
	})
}

// terminalEvent synthesizes the closing stream event for a job that
// finished before the subscriber arrived (its real transition may have
// been evicted from the replay ring).
func (s *Service) terminalEvent(jobID string) (Event, bool) {
	st, err := s.Status(jobID)
	if err != nil || !st.State.Terminal() {
		return Event{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return Event{
		Time:       s.now(),
		Kind:       EventJob,
		JobID:      jobID,
		State:      st.State,
		Error:      st.Error,
		CacheHit:   st.CacheHit,
		Coalesced:  st.Coalesced,
		QueueDepth: len(s.queue),
		Running:    s.running,
		Completed:  s.completed.Value(),
	}, true
}
