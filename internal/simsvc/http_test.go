package simsvc

import (
	"net/http/httptest"
	"testing"
	"time"
)

// TestRetryAfterHeaderClamped is a regression test for the Retry-After
// rounding bug: a sub-second RetryAfter used to render as "0", which
// seconds-form parsers treat as absent, so clients never saw the server's
// backpressure hint. The transport must clamp to at least 1 second
// regardless of what the Error carries.
func TestRetryAfterHeaderClamped(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{200 * time.Millisecond, "1"},
		{999 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1600 * time.Millisecond, "2"},
		{90 * time.Second, "90"},
		{0, "1"},
	}
	for _, tc := range cases {
		if got := retryAfterSecs(tc.d); got != tc.want {
			t.Errorf("retryAfterSecs(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}

	rec := httptest.NewRecorder()
	writeError(rec, &Error{Kind: ErrQueueFull, Msg: "queue full",
		RetryAfter: 250 * time.Millisecond})
	if rec.Code != 429 {
		t.Fatalf("status = %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q for a 250ms hint, want %q", got, "1")
	}
}
