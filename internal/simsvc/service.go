// Package simsvc turns the one-shot simulator into a simulation job
// service: a bounded FIFO queue with backpressure, a worker pool running
// jobs through the public doram.SimulateContext path (with per-job
// timeout, panic isolation and cooperative cancellation), an LRU result
// cache keyed by the canonical spec hash, and single-flight coalescing of
// concurrent duplicate specs. The HTTP/JSON front end lives in http.go;
// cmd/doramd serves it and cmd/doramctl drives it.
//
// Job lifecycle (DESIGN.md §12):
//
//	queued ──▶ running ──▶ done
//	   │           │  └───▶ failed     (error, panic, timeout)
//	   └───────────┴──────▶ cancelled  (client request or drain)
//
// A submission whose canonical spec hash matches a cached result completes
// immediately (queued ▶ done, CacheHit). One matching a queued or running
// job attaches to it as a follower (Coalesced) and shares its fate.
package simsvc

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"strings"
	"sync"
	"time"

	"doram"
	"doram/internal/metrics"
	"doram/internal/obslog"
	"doram/internal/stats"
)

// State is a job's lifecycle state.
type State string

// Job states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Transition is one recorded state change. The history makes lifecycle
// transitions observable after the fact — a client polling a fast job
// still sees that it passed through queued and running.
type Transition struct {
	State State     `json:"state"`
	At    time.Time `json:"at"`
}

// ErrorKind classifies service errors for transport mapping.
type ErrorKind int

// Error kinds.
const (
	ErrInvalid   ErrorKind = iota // malformed or unrunnable spec
	ErrNotFound                   // unknown job id
	ErrQueueFull                  // backpressure: retry after RetryAfter
	ErrDraining                   // service is shutting down
	ErrConflict                   // operation invalid in the job's state
	ErrFailed                     // job reached the failed state
)

// Error is a service error carrying its kind and, for ErrQueueFull, a
// suggested retry delay derived from queue depth and observed job times.
type Error struct {
	Kind       ErrorKind
	Msg        string
	RetryAfter time.Duration
}

func (e *Error) Error() string { return e.Msg }

// Config tunes a Service. Zero values select the documented defaults.
type Config struct {
	// Workers is the worker-pool size; 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the FIFO job queue; submissions beyond it are
	// rejected with ErrQueueFull. 0 means 64.
	QueueDepth int
	// CacheEntries sizes the LRU result cache; 0 means 128, negative
	// disables caching.
	CacheEntries int
	// JobTimeout bounds one simulation's wall time; 0 means 5 minutes.
	JobTimeout time.Duration
	// MaxTraceLen caps the admitted per-core trace length (an admission
	// control against queue-clogging jobs); 0 means 2,000,000.
	MaxTraceLen uint64
	// RetainJobs bounds how many terminal jobs stay queryable (status,
	// result, metrics) before the oldest are forgotten, FIFO. Without a
	// bound a sustained load run (doramload) grows the job table without
	// limit — each submission is a new job ID even on a cache hit. 0
	// means DefaultRetainJobs; negative retains everything (the historical
	// behaviour, for batch workloads that read results long after a
	// sweep). Non-terminal jobs are never evicted.
	RetainJobs int
	// Registry receives the service counters; nil builds a private one.
	// Only concurrency-safe instruments are registered, so the registry
	// may be dumped (GET /varz) while jobs run.
	Registry *metrics.Registry
	// RunSim overrides the simulation entry point; nil means
	// doram.SimulateContext. Tests (including the cluster chaos harness)
	// substitute it to make pool behaviour — blocking, panicking, slow
	// workers — deterministic.
	RunSim func(context.Context, doram.SimConfig) (*doram.SimResult, error)
	// Now overrides the clock behind job-history timestamps, run-duration
	// accounting, and the Retry-After estimate; nil means time.Now. Tests
	// pin it to assert on transition times instead of sleeping.
	Now func() time.Time
	// Logger receives structured job-lifecycle logs (log/slog); nil
	// discards them, preserving the historical silence of embedded
	// services in tests.
	Logger *slog.Logger
	// EventHistory sizes the event bus's replay ring (Last-Event-ID
	// resume window); 0 means DefaultEventHistory.
	EventHistory int
	// SSEHeartbeat is the /events comment-heartbeat cadence; 0 means
	// DefaultSSEHeartbeat.
	SSEHeartbeat time.Duration
	// After overrides the SSE heartbeat timer source; nil means
	// time.After. Tests fire heartbeats deterministically through it.
	After func(time.Duration) <-chan time.Time
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 128
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.MaxTraceLen == 0 {
		c.MaxTraceLen = 2_000_000
	}
	if c.RetainJobs == 0 {
		c.RetainJobs = DefaultRetainJobs
	}
	return c
}

// DefaultRetainJobs is the terminal-job retention bound when
// Config.RetainJobs is zero: large enough that any client polling at a
// sane cadence reads its results long before eviction, small enough that
// a multi-hour load run holds a bounded job table.
const DefaultRetainJobs = 4096

// Job is one submitted simulation. All mutable state is guarded by the
// owning service's lock; read it through Status / Result or wait on Done.
type Job struct {
	svc  *Service
	id   string
	spec doram.Params // canonical
	hash string

	state     State
	history   []Transition
	errMsg    string
	result    *doram.SimResult
	cacheHit  bool
	coalesced bool

	leader    *Job   // non-nil on followers
	followers []*Job // on leaders

	cancelRequested bool
	cancelRun       context.CancelFunc // set while running

	done chan struct{} // closed on terminal transition
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Status returns a snapshot of the job.
func (j *Job) Status() JobStatus {
	j.svc.mu.Lock()
	defer j.svc.mu.Unlock()
	return j.statusLocked()
}

// JobStatus is the externally visible snapshot of a job.
type JobStatus struct {
	ID       string       `json:"id"`
	State    State        `json:"state"`
	SpecHash string       `json:"spec_hash"`
	Spec     doram.Params `json:"spec"`
	// CacheHit marks a job served from the result cache without
	// simulating; Coalesced one that attached to an identical in-flight
	// job (single-flight) and shares its outcome.
	CacheHit  bool         `json:"cache_hit,omitempty"`
	Coalesced bool         `json:"coalesced,omitempty"`
	Error     string       `json:"error,omitempty"`
	History   []Transition `json:"history"`
}

func (j *Job) statusLocked() JobStatus {
	st := JobStatus{
		ID:        j.id,
		State:     j.state,
		SpecHash:  j.hash,
		Spec:      j.spec,
		CacheHit:  j.cacheHit,
		Coalesced: j.coalesced,
		Error:     j.errMsg,
		History:   append([]Transition(nil), j.history...),
	}
	return st
}

// Service is the simulation job service.
type Service struct {
	cfg Config

	mu       sync.Mutex
	jobs     map[string]*Job
	inflight map[string]*Job // canonical spec hash -> queued/running leader
	// terminal is the FIFO of terminal job IDs backing RetainJobs
	// eviction; its head is the next job to be forgotten.
	terminal []string
	cache    *resultCache
	seq      uint64
	running  int
	draining bool
	ewmaSec  float64 // smoothed job wall time, drives Retry-After

	// runStart tracks when each in-flight run began; while the EWMA is
	// cold (no job has completed yet) the oldest run's elapsed time is
	// the best available lower bound on a job's duration.
	runStart map[*Job]time.Time

	queue      chan *Job
	wg         sync.WaitGroup
	baseCtx    context.Context
	baseCancel context.CancelFunc

	reg *metrics.Registry
	// Counters; all concurrency-safe (see Config.Registry).
	submitted, completed, failed, cancelled, rejected *metrics.SyncCounter
	cacheHits, cacheMisses, coalescedCtr              *metrics.SyncCounter
	simRuns, simPanics                                *metrics.SyncCounter

	// runSim is the simulation entry point; tests substitute it to make
	// pool behaviour (blocking, panicking) deterministic.
	runSim func(context.Context, doram.SimConfig) (*doram.SimResult, error)
	// now is the clock behind history timestamps and duration accounting;
	// time.Now unless Config.Now injected one.
	now func() time.Time

	logger *slog.Logger
	bus    *EventBus

	// stageHists accumulates cross-job per-stage latency histograms
	// (lifted from each finished job's evtrace attribution) plus the job
	// wall-time histogram; guarded by mu, exposed on GET /metrics.
	stageHists map[string]*stats.Histogram
	jobDur     *stats.Histogram // wall milliseconds per completed run
}

// New builds a service and starts its worker pool.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.New()
	}
	s := &Service{
		cfg:        cfg,
		jobs:       make(map[string]*Job),
		inflight:   make(map[string]*Job),
		cache:      newResultCache(cfg.CacheEntries),
		queue:      make(chan *Job, cfg.QueueDepth),
		runStart:   make(map[*Job]time.Time),
		reg:        reg,
		runSim:     doram.SimulateContext,
		now:        time.Now,
		logger:     obslog.Discard(),
		bus:        NewEventBus(cfg.EventHistory),
		stageHists: make(map[string]*stats.Histogram),
		jobDur:     stats.NewHistogram(jobDurationBoundsMs),
	}
	if cfg.RunSim != nil {
		s.runSim = cfg.RunSim
	}
	if cfg.Now != nil {
		s.now = cfg.Now
	}
	if cfg.Logger != nil {
		s.logger = cfg.Logger
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.submitted = reg.SyncCounter("simsvc.jobs.submitted")
	s.completed = reg.SyncCounter("simsvc.jobs.completed")
	s.failed = reg.SyncCounter("simsvc.jobs.failed")
	s.cancelled = reg.SyncCounter("simsvc.jobs.cancelled")
	s.rejected = reg.SyncCounter("simsvc.jobs.rejected")
	s.cacheHits = reg.SyncCounter("simsvc.cache.hits")
	s.cacheMisses = reg.SyncCounter("simsvc.cache.misses")
	s.coalescedCtr = reg.SyncCounter("simsvc.jobs.coalesced")
	s.simRuns = reg.SyncCounter("simsvc.sim.runs")
	s.simPanics = reg.SyncCounter("simsvc.sim.panics")
	reg.CounterFunc("simsvc.queue.depth", func() uint64 { return uint64(len(s.queue)) })
	reg.CounterFunc("simsvc.jobs.running", func() uint64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return uint64(s.running)
	})
	reg.CounterFunc("simsvc.cache.entries", func() uint64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return uint64(s.cache.len())
	})
	reg.CounterFunc("simsvc.retry.ewma_ms", func() uint64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return uint64(s.ewmaSec * 1000)
	})
	reg.CounterFunc("simsvc.retry.estimate_ms", func() uint64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return uint64(s.retryAfterLocked().Milliseconds())
	})
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Registry returns the service's metric registry (the /varz source).
func (s *Service) Registry() *metrics.Registry { return s.reg }

// Draining reports whether the service has begun shutting down.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Submit admits one job. The spec is canonicalized and validated; the
// returned job may already be terminal (cache hit). ErrQueueFull carries a
// Retry-After estimate; ErrDraining rejects submissions during shutdown.
func (s *Service) Submit(spec doram.Params) (*Job, error) {
	p := spec.Canonical()
	if err := p.Validate(); err != nil {
		return nil, &Error{Kind: ErrInvalid, Msg: err.Error()}
	}
	if p.TraceLen > s.cfg.MaxTraceLen {
		return nil, &Error{Kind: ErrInvalid,
			Msg: fmt.Sprintf("simsvc: trace_len %d above the service cap %d", p.TraceLen, s.cfg.MaxTraceLen)}
	}
	hash := p.Hash()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, &Error{Kind: ErrDraining, Msg: "simsvc: draining, not accepting jobs"}
	}
	s.submitted.Inc()

	if res, ok := s.cache.get(hash); ok {
		job := s.newJobLocked(p, hash)
		job.cacheHit = true
		job.result = res
		s.cacheHits.Inc()
		s.completed.Inc()
		s.publishQueuedLocked(job)
		s.transitionLocked(job, StateDone)
		return job, nil
	}

	if leader := s.inflight[hash]; leader != nil && !leader.cancelRequested {
		job := s.newJobLocked(p, hash)
		job.coalesced = true
		job.leader = leader
		leader.followers = append(leader.followers, job)
		s.publishQueuedLocked(job)
		if leader.state == StateRunning {
			s.transitionLocked(job, StateRunning)
		}
		s.coalescedCtr.Inc()
		return job, nil
	}

	job := s.newJobLocked(p, hash)
	select {
	case s.queue <- job:
		s.inflight[hash] = job
		s.cacheMisses.Inc()
		s.publishQueuedLocked(job)
		return job, nil
	default:
		delete(s.jobs, job.id)
		s.rejected.Inc()
		return nil, &Error{Kind: ErrQueueFull,
			Msg:        fmt.Sprintf("simsvc: queue full (%d jobs)", s.cfg.QueueDepth),
			RetryAfter: s.retryAfterLocked()}
	}
}

// newJobLocked registers a fresh job in the queued state.
func (s *Service) newJobLocked(spec doram.Params, hash string) *Job {
	s.seq++
	job := &Job{
		svc:  s,
		id:   fmt.Sprintf("j-%08d", s.seq),
		spec: spec,
		hash: hash,
		done: make(chan struct{}),
	}
	job.state = StateQueued
	job.history = []Transition{{State: StateQueued, At: s.now()}}
	s.jobs[job.id] = job
	return job
}

// jobDurationBoundsMs are power-of-two wall-millisecond buckets for the
// per-run duration histogram, 1 ms to ~17 min before overflow.
var jobDurationBoundsMs = func() []uint64 {
	b := make([]uint64, 20)
	for i := range b {
		b[i] = 1 << uint(i)
	}
	return b
}()

// Events returns the service's event bus — every job state transition and
// service lifecycle marker, consumed by the SSE endpoints and (in cluster
// mode) embedding daemons.
func (s *Service) Events() *EventBus { return s.bus }

// transitionLocked records a state change; terminal states close Done.
// Every transition is published on the event bus together with the load
// gauges at that instant.
func (s *Service) transitionLocked(job *Job, to State) {
	job.state = to
	job.history = append(job.history, Transition{State: to, At: s.now()})
	if to.Terminal() {
		close(job.done)
		s.retireLocked(job)
	}
	s.publishJobLocked(job, to)
	if to == StateFailed {
		s.logger.Warn("job failed",
			slog.String("job_id", job.id), slog.String("error", job.errMsg))
	}
}

// publishQueuedLocked announces a freshly accepted job on the event bus.
// Creation sets the queued state directly (newJobLocked), so it is not a
// transition; it is published only once the job is actually admitted —
// a queue-full rejection discards the job without an event.
func (s *Service) publishQueuedLocked(job *Job) {
	s.publishJobLocked(job, StateQueued)
}

func (s *Service) publishJobLocked(job *Job, st State) {
	s.bus.Publish(Event{
		Time:       s.now(),
		Kind:       EventJob,
		JobID:      job.id,
		State:      st,
		Error:      job.errMsg,
		CacheHit:   job.cacheHit,
		Coalesced:  job.coalesced,
		QueueDepth: len(s.queue),
		Running:    s.running,
		Completed:  s.completed.Value(),
	})
	s.logger.Debug("job state",
		slog.String("job_id", job.id), slog.String("state", string(st)))
}

// retireLocked enrolls a freshly terminal job in the retention FIFO and
// evicts beyond the bound. Each job reaches a terminal state exactly once
// (transitionLocked is guarded by Terminal checks at every call site), so
// the FIFO never holds duplicates; non-terminal jobs are never enrolled
// and so never evicted.
func (s *Service) retireLocked(job *Job) {
	if s.cfg.RetainJobs < 0 {
		return
	}
	s.terminal = append(s.terminal, job.id)
	for len(s.terminal) > s.cfg.RetainJobs {
		delete(s.jobs, s.terminal[0])
		s.terminal = s.terminal[1:]
	}
}

// finalizeLocked moves a job and its live followers to a terminal state.
func (s *Service) finalizeLocked(job *Job, to State, res *doram.SimResult, errMsg string) {
	targets := append([]*Job{job}, job.followers...)
	for _, t := range targets {
		if t.state.Terminal() {
			continue // e.g. a follower cancelled individually
		}
		t.result = res
		t.errMsg = errMsg
		// Counters first so the published transition event's Completed
		// gauge already includes this job — a tailing client sees sweep
		// progress counts that agree with the event that advanced them.
		switch to {
		case StateDone:
			s.completed.Inc()
		case StateFailed:
			s.failed.Inc()
		case StateCancelled:
			s.cancelled.Inc()
		}
		s.transitionLocked(t, to)
	}
}

// retryAfterLocked estimates when queue capacity will free up: pending
// work over pool width at the smoothed job duration, clamped to [1s, 60s].
// While the EWMA is cold (nothing has completed yet) the oldest in-flight
// run's elapsed time stands in — a lower bound on a job's true duration,
// and already a far better signal than a flat guess when jobs run long.
func (s *Service) retryAfterLocked() time.Duration {
	per := s.ewmaSec
	if per <= 0 {
		for _, start := range s.runStart {
			if sec := s.now().Sub(start).Seconds(); sec > per {
				per = sec
			}
		}
	}
	if per <= 0 {
		per = 1
	}
	pending := len(s.queue) + s.running
	est := time.Duration(per*float64(pending)/float64(s.cfg.Workers)*float64(time.Second) + float64(time.Second-1))
	if est < time.Second {
		est = time.Second
	}
	if est > time.Minute {
		est = time.Minute
	}
	return est
}

func (s *Service) updateEWMALocked(d time.Duration) {
	const alpha = 0.3
	sec := d.Seconds()
	if s.ewmaSec == 0 {
		s.ewmaSec = sec
		return
	}
	s.ewmaSec = alpha*sec + (1-alpha)*s.ewmaSec
}

func (s *Service) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

// runJob executes one dequeued leader end to end.
func (s *Service) runJob(job *Job) {
	s.mu.Lock()
	if job.state.Terminal() { // cancelled while queued
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.JobTimeout)
	job.cancelRun = cancel
	s.transitionLocked(job, StateRunning)
	for _, f := range job.followers {
		if !f.state.Terminal() {
			s.transitionLocked(f, StateRunning)
		}
	}
	s.running++
	start := s.now()
	s.runStart[job] = start
	s.mu.Unlock()

	s.simRuns.Inc()
	res, err := s.safeRun(ctx, job.spec.SimConfig())
	cancel()
	dur := s.now().Sub(start)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.running--
	delete(s.runStart, job)
	job.cancelRun = nil
	if s.inflight[job.hash] == job {
		delete(s.inflight, job.hash)
	}
	switch {
	case err == nil:
		s.cache.put(job.hash, res)
		s.updateEWMALocked(dur)
		s.foldStageHistsLocked(res, dur)
		s.finalizeLocked(job, StateDone, res, "")
	case errors.Is(err, context.Canceled):
		s.finalizeLocked(job, StateCancelled, nil, "simsvc: cancelled mid-run")
	case errors.Is(err, context.DeadlineExceeded):
		s.finalizeLocked(job, StateFailed, nil,
			fmt.Sprintf("simsvc: timed out after %s", s.cfg.JobTimeout))
	default:
		s.finalizeLocked(job, StateFailed, nil, err.Error())
	}
}

// foldStageHistsLocked accumulates one finished run into the serving-level
// latency histograms: wall time always, and — when the job's spec enabled
// tracing — the full per-stage evtrace attribution histograms, merged
// bucket-wise. This is what makes execution interference scrapeable at
// GET /metrics instead of only dumpable per job: every traced job's stage
// latencies aggregate into one continuously exported distribution.
func (s *Service) foldStageHistsLocked(res *doram.SimResult, dur time.Duration) {
	s.jobDur.Observe(uint64(dur.Milliseconds()))
	if res == nil || res.Trace == nil {
		return
	}
	for key, h := range res.Trace.StageHists {
		name := "simsvc.stage." + strings.ReplaceAll(key, "/", ".") + ".cycles"
		dst := s.stageHists[name]
		if dst == nil {
			dst = stats.NewHistogram(h.Bounds())
			s.stageHists[name] = dst
		}
		if err := dst.MergeFrom(h); err != nil {
			s.logger.Warn("stage histogram merge failed",
				slog.String("stage", key), slog.String("error", err.Error()))
		}
	}
}

// dump snapshots the registry plus the serving-level histograms (job wall
// time, per-stage latency) that live outside the registry. The /varz and
// /metrics handlers both serve it.
func (s *Service) dump() *metrics.Dump {
	d := s.reg.Dump()
	s.mu.Lock()
	defer s.mu.Unlock()
	if d.Histograms == nil {
		d.Histograms = make(map[string]metrics.HistogramDump, len(s.stageHists)+1)
	}
	d.Histograms["simsvc.job.duration_ms"] = metrics.NewHistogramDump(s.jobDur)
	for name, h := range s.stageHists {
		d.Histograms[name] = metrics.NewHistogramDump(h)
	}
	return d
}

// safeRun isolates a panicking simulation: the job fails, the worker (and
// server) survive.
func (s *Service) safeRun(ctx context.Context, cfg doram.SimConfig) (res *doram.SimResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.simPanics.Inc()
			res, err = nil, fmt.Errorf("simsvc: simulation panicked: %v", r)
		}
	}()
	return s.runSim(ctx, cfg)
}

// Cancel requests cancellation of a job. Queued jobs cancel immediately;
// running jobs abort cooperatively within a few thousand simulated loop
// iterations. Cancelling a coalesced follower detaches only that follower;
// cancelling a leader takes its followers with it (they subscribed to a
// simulation that will now never produce a result). Terminal jobs are
// left untouched (idempotent success).
func (s *Service) Cancel(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return &Error{Kind: ErrNotFound, Msg: fmt.Sprintf("simsvc: unknown job %q", id)}
	}
	if job.state.Terminal() {
		return nil
	}
	job.cancelRequested = true
	switch {
	case job.leader != nil: // follower: detach quietly
		s.finalizeLocked(job, StateCancelled, nil, "simsvc: cancelled by client")
	case job.cancelRun != nil: // running leader: worker finalizes
		job.cancelRun()
	default: // queued leader
		if s.inflight[job.hash] == job {
			delete(s.inflight, job.hash)
		}
		s.finalizeLocked(job, StateCancelled, nil, "simsvc: cancelled by client")
	}
	return nil
}

// Status returns a job snapshot.
func (s *Service) Status(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, &Error{Kind: ErrNotFound, Msg: fmt.Sprintf("simsvc: unknown job %q", id)}
	}
	return job.statusLocked(), nil
}

// Result returns a finished job's result. Non-terminal jobs yield
// ErrConflict ("not done yet"), failed ones ErrFailed, cancelled ones
// ErrConflict.
func (s *Service) Result(id string) (*doram.SimResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return nil, &Error{Kind: ErrNotFound, Msg: fmt.Sprintf("simsvc: unknown job %q", id)}
	}
	switch job.state {
	case StateDone:
		return job.result, nil
	case StateFailed:
		return nil, &Error{Kind: ErrFailed, Msg: job.errMsg}
	default:
		return nil, &Error{Kind: ErrConflict,
			Msg: fmt.Sprintf("simsvc: job %s is %s, result not available", id, job.state)}
	}
}

// Metrics returns a finished job's metric dump, if its spec enabled the
// observability subsystem.
func (s *Service) Metrics(id string) (*doram.MetricsDump, error) {
	res, err := s.Result(id)
	if err != nil {
		return nil, err
	}
	if res.Metrics == nil {
		return nil, &Error{Kind: ErrNotFound,
			Msg: fmt.Sprintf("simsvc: job %s did not enable metrics (set \"metrics\": true in the spec)", id)}
	}
	return res.Metrics, nil
}

// Close drains the service: new submissions are rejected, queued jobs are
// cancelled, and running jobs get until ctx's deadline to finish before
// being aborted cooperatively. It returns nil on a clean drain and the
// context's error if running jobs had to be aborted.
func (s *Service) Close(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("simsvc: already closed")
	}
	s.draining = true
	s.logger.Info("draining")
	s.bus.Publish(Event{Time: s.now(), Kind: EventService, Message: "draining",
		QueueDepth: len(s.queue), Running: s.running, Completed: s.completed.Value()})
	for _, job := range s.jobs {
		if job.state == StateQueued && job.leader == nil {
			if s.inflight[job.hash] == job {
				delete(s.inflight, job.hash)
			}
			s.finalizeLocked(job, StateCancelled, nil, "simsvc: server draining")
		}
	}
	close(s.queue)
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		s.bus.Close() // after the last worker's terminal events published
		return nil
	case <-ctx.Done():
		s.baseCancel() // abort in-flight simulations; they stop within ~ms
		<-drained
		s.bus.Close()
		return ctx.Err()
	}
}
