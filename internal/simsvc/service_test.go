package simsvc

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"doram"
)

// specWithSeed returns a valid d-oram spec distinguished by seed.
func specWithSeed(seed uint64) doram.Params {
	return doram.Params{Scheme: doram.SchemeDORAM, Benchmark: "face", SplitK: 1, Seed: seed}
}

// blockingSim returns a runSim stub that signals each start on started,
// then blocks until release closes or the context ends (returning ctx's
// error in that case — the same contract as the real simulator).
func blockingSim(started chan<- string, release <-chan struct{}) func(context.Context, doram.SimConfig) (*doram.SimResult, error) {
	return func(ctx context.Context, cfg doram.SimConfig) (*doram.SimResult, error) {
		if started != nil {
			started <- cfg.Benchmark
		}
		select {
		case <-release:
			return &doram.SimResult{AvgNSExecCycles: float64(cfg.Seed)}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func waitState(t *testing.T, s *Service, id string, want State) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := s.Status(id)
		if err != nil {
			t.Fatalf("status %s: %v", id, err)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached terminal state %s (error %q), wanted %s", id, st.State, st.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %s", id, want)
	return JobStatus{}
}

func counter(t *testing.T, s *Service, name string) uint64 {
	t.Helper()
	v, ok := s.Registry().CounterValues()[name]
	if !ok {
		t.Fatalf("counter %q not registered", name)
	}
	return v
}

func closeService(t *testing.T, s *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s.Close(ctx)
}

// TestQueueFullBackpressure: once the queue is full, submissions are
// rejected with ErrQueueFull and a positive Retry-After, and the rejection
// is counted — no job is silently dropped.
func TestQueueFullBackpressure(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	s := New(Config{Workers: 1, QueueDepth: 1})
	s.runSim = blockingSim(started, release)
	defer closeService(t, s)

	// Occupy the only worker, then the only queue slot.
	running, err := s.Submit(specWithSeed(1))
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	<-started // worker has dequeued job 1; queue is empty again
	if _, err := s.Submit(specWithSeed(2)); err != nil {
		t.Fatalf("submit 2: %v", err)
	}

	_, err = s.Submit(specWithSeed(3))
	var se *Error
	if !errors.As(err, &se) || se.Kind != ErrQueueFull {
		t.Fatalf("submit 3: got %v, want ErrQueueFull", err)
	}
	if se.RetryAfter < time.Second {
		t.Errorf("Retry-After %v, want >= 1s", se.RetryAfter)
	}
	if got := counter(t, s, "simsvc.jobs.rejected"); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}

	close(release)
	<-running.Done()
	if st := running.Status(); st.State != StateDone {
		t.Errorf("job 1 finished %s (%s), want done", st.State, st.Error)
	}
}

// TestSingleFlightCoalescing: a duplicate of an in-flight spec attaches to
// the running job instead of simulating twice, and both jobs share the
// result.
func TestSingleFlightCoalescing(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	s := New(Config{Workers: 2})
	s.runSim = blockingSim(started, release)
	defer closeService(t, s)

	leader, err := s.Submit(specWithSeed(1))
	if err != nil {
		t.Fatalf("submit leader: %v", err)
	}
	<-started
	follower, err := s.Submit(specWithSeed(1))
	if err != nil {
		t.Fatalf("submit duplicate: %v", err)
	}
	st := follower.Status()
	if !st.Coalesced {
		t.Errorf("duplicate not marked coalesced: %+v", st)
	}
	if st.State != StateRunning {
		t.Errorf("follower of a running leader is %s, want running", st.State)
	}

	close(release)
	<-leader.Done()
	<-follower.Done()
	lr, err := s.Result(leader.ID())
	if err != nil {
		t.Fatalf("leader result: %v", err)
	}
	fr, err := s.Result(follower.ID())
	if err != nil {
		t.Fatalf("follower result: %v", err)
	}
	if lr != fr {
		t.Errorf("leader and follower hold different result objects")
	}
	if got := counter(t, s, "simsvc.sim.runs"); got != 1 {
		t.Errorf("sim.runs = %d, want 1 (duplicate must not re-simulate)", got)
	}
	if got := counter(t, s, "simsvc.jobs.coalesced"); got != 1 {
		t.Errorf("jobs.coalesced = %d, want 1", got)
	}
}

// TestCacheHit: resubmitting a completed spec is served from the LRU cache
// — terminal immediately, same result object, no second simulation.
func TestCacheHit(t *testing.T) {
	s := New(Config{Workers: 1})
	s.runSim = func(ctx context.Context, cfg doram.SimConfig) (*doram.SimResult, error) {
		return &doram.SimResult{AvgNSExecCycles: float64(cfg.Seed)}, nil
	}
	defer closeService(t, s)

	first, err := s.Submit(specWithSeed(7))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-first.Done()

	second, err := s.Submit(specWithSeed(7))
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	st := second.Status()
	if st.State != StateDone || !st.CacheHit {
		t.Fatalf("resubmit state %s cacheHit=%v, want immediate cached done", st.State, st.CacheHit)
	}
	r1, _ := s.Result(first.ID())
	r2, _ := s.Result(second.ID())
	if r1 != r2 {
		t.Errorf("cache hit returned a different result object")
	}
	if got := counter(t, s, "simsvc.cache.hits"); got != 1 {
		t.Errorf("cache.hits = %d, want 1", got)
	}
	if got := counter(t, s, "simsvc.sim.runs"); got != 1 {
		t.Errorf("sim.runs = %d, want 1", got)
	}
}

// TestPanicIsolation: a panicking simulation fails its job but neither
// kills the worker nor the process — the next job still runs.
func TestPanicIsolation(t *testing.T) {
	s := New(Config{Workers: 1})
	calls := 0
	s.runSim = func(ctx context.Context, cfg doram.SimConfig) (*doram.SimResult, error) {
		calls++
		if calls == 1 {
			panic("rng state corrupted")
		}
		return &doram.SimResult{}, nil
	}
	defer closeService(t, s)

	bad, err := s.Submit(specWithSeed(1))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-bad.Done()
	st := bad.Status()
	if st.State != StateFailed || !strings.Contains(st.Error, "panicked") {
		t.Fatalf("panicking job: state %s error %q, want failed/panicked", st.State, st.Error)
	}
	if got := counter(t, s, "simsvc.sim.panics"); got != 1 {
		t.Errorf("sim.panics = %d, want 1", got)
	}

	good, err := s.Submit(specWithSeed(2))
	if err != nil {
		t.Fatalf("submit after panic: %v", err)
	}
	<-good.Done()
	if st := good.Status(); st.State != StateDone {
		t.Errorf("job after panic finished %s (%s), want done — worker died?", st.State, st.Error)
	}
}

// TestCancelQueued: cancelling a job still in the queue is immediate and
// the worker later skips its corpse.
func TestCancelQueued(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	s := New(Config{Workers: 1, QueueDepth: 4})
	s.runSim = blockingSim(started, release)
	defer closeService(t, s)

	if _, err := s.Submit(specWithSeed(1)); err != nil {
		t.Fatalf("submit blocker: %v", err)
	}
	<-started
	queued, err := s.Submit(specWithSeed(2))
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}
	if err := s.Cancel(queued.ID()); err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	st := queued.Status()
	if st.State != StateCancelled {
		t.Fatalf("cancelled queued job is %s, want cancelled", st.State)
	}
	for _, tr := range st.History {
		if tr.State == StateRunning {
			t.Errorf("cancelled-while-queued job recorded a running transition")
		}
	}

	close(release)
	select {
	case <-started: // the worker must NOT start the cancelled job
		t.Errorf("worker ran a job cancelled while queued")
	case <-time.After(50 * time.Millisecond):
	}
	if got := counter(t, s, "simsvc.jobs.cancelled"); got != 1 {
		t.Errorf("jobs.cancelled = %d, want 1", got)
	}
}

// TestCancelMidRunRealSim drives the real simulator: a long run is
// cancelled cooperatively partway through via core.Config.Stop polling.
func TestCancelMidRunRealSim(t *testing.T) {
	s := New(Config{Workers: 1})
	defer closeService(t, s)

	// A long job: 2M accesses takes many seconds uncancelled.
	spec := doram.Params{Scheme: doram.SchemeDORAM, Benchmark: "face", SplitK: 1, TraceLen: 2_000_000}
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitState(t, s, job.ID(), StateRunning)
	if err := s.Cancel(job.ID()); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	select {
	case <-job.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("running job did not stop within 10s of cancellation")
	}
	st := job.Status()
	if st.State != StateCancelled {
		t.Fatalf("cancelled run ended %s (%s), want cancelled", st.State, st.Error)
	}
	if _, err := s.Result(job.ID()); err == nil {
		t.Errorf("cancelled job handed out a result")
	}
}

// TestJobTimeout: a run exceeding JobTimeout fails with a timeout error.
func TestJobTimeout(t *testing.T) {
	s := New(Config{Workers: 1, JobTimeout: 20 * time.Millisecond})
	s.runSim = blockingSim(nil, nil) // blocks until ctx deadline
	defer closeService(t, s)

	job, err := s.Submit(specWithSeed(1))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-job.Done()
	st := job.Status()
	if st.State != StateFailed || !strings.Contains(st.Error, "timed out") {
		t.Errorf("timed-out job: state %s error %q", st.State, st.Error)
	}
}

// TestCancelLeaderCancelsFollowers: followers subscribed to a cancelled
// leader cannot ever get a result, so they cancel with it.
func TestCancelLeaderCancelsFollowers(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	s := New(Config{Workers: 1})
	s.runSim = blockingSim(started, release)
	defer closeService(t, s)
	defer close(release)

	leader, err := s.Submit(specWithSeed(1))
	if err != nil {
		t.Fatalf("submit leader: %v", err)
	}
	<-started
	follower, err := s.Submit(specWithSeed(1))
	if err != nil {
		t.Fatalf("submit follower: %v", err)
	}
	if err := s.Cancel(leader.ID()); err != nil {
		t.Fatalf("cancel leader: %v", err)
	}
	<-follower.Done()
	if st := follower.Status(); st.State != StateCancelled {
		t.Errorf("follower of cancelled leader is %s, want cancelled", st.State)
	}
}

// TestCancelFollowerLeavesLeader: the inverse — detaching one subscriber
// must not abort the shared simulation.
func TestCancelFollowerLeavesLeader(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	s := New(Config{Workers: 1})
	s.runSim = blockingSim(started, release)
	defer closeService(t, s)

	leader, err := s.Submit(specWithSeed(1))
	if err != nil {
		t.Fatalf("submit leader: %v", err)
	}
	<-started
	follower, err := s.Submit(specWithSeed(1))
	if err != nil {
		t.Fatalf("submit follower: %v", err)
	}
	if err := s.Cancel(follower.ID()); err != nil {
		t.Fatalf("cancel follower: %v", err)
	}
	if st := follower.Status(); st.State != StateCancelled {
		t.Fatalf("cancelled follower is %s", st.State)
	}

	close(release)
	<-leader.Done()
	if st := leader.Status(); st.State != StateDone {
		t.Errorf("leader finished %s after follower cancel, want done", st.State)
	}
}

// TestDrain: Close cancels queued jobs, lets running ones finish, and
// rejects new submissions.
func TestDrain(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	s := New(Config{Workers: 1, QueueDepth: 4})
	s.runSim = blockingSim(started, release)

	running, err := s.Submit(specWithSeed(1))
	if err != nil {
		t.Fatalf("submit running: %v", err)
	}
	<-started
	queued, err := s.Submit(specWithSeed(2))
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}

	closed := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		closed <- s.Close(ctx)
	}()

	// Draining: queued jobs cancel promptly, new submissions bounce.
	<-queued.Done()
	if st := queued.Status(); st.State != StateCancelled || !strings.Contains(st.Error, "draining") {
		t.Errorf("queued job at drain: %s (%s)", st.State, st.Error)
	}
	var se *Error
	if _, err := s.Submit(specWithSeed(3)); !errors.As(err, &se) || se.Kind != ErrDraining {
		t.Errorf("submit during drain: got %v, want ErrDraining", err)
	}

	close(release) // let the running job finish cleanly
	if err := <-closed; err != nil {
		t.Errorf("clean drain returned %v", err)
	}
	if st := running.Status(); st.State != StateDone {
		t.Errorf("running job at drain finished %s, want done", st.State)
	}
}

// TestDrainDeadlineAborts: when the drain deadline passes, in-flight runs
// are force-aborted rather than held forever.
func TestDrainDeadlineAborts(t *testing.T) {
	started := make(chan string, 8)
	s := New(Config{Workers: 1})
	s.runSim = blockingSim(started, nil) // never releases; only ctx can end it

	job, err := s.Submit(specWithSeed(1))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain returned %v, want deadline exceeded", err)
	}
	if st := job.Status(); !st.State.Terminal() {
		t.Errorf("job still %s after forced drain", st.State)
	}
}

// TestSubmitRejections covers admission control: invalid specs and
// over-cap trace lengths never reach the queue.
func TestSubmitRejections(t *testing.T) {
	s := New(Config{Workers: 1, MaxTraceLen: 1000})
	defer closeService(t, s)

	var se *Error
	if _, err := s.Submit(doram.Params{Scheme: "quantum", Benchmark: "face"}); !errors.As(err, &se) || se.Kind != ErrInvalid {
		t.Errorf("bad scheme: got %v, want ErrInvalid", err)
	}
	if _, err := s.Submit(doram.Params{Scheme: doram.SchemeDORAM, Benchmark: "face", TraceLen: 5000}); !errors.As(err, &se) || se.Kind != ErrInvalid {
		t.Errorf("over-cap trace_len: got %v, want ErrInvalid", err)
	}
	if _, err := s.Status("j-99999999"); !errors.As(err, &se) || se.Kind != ErrNotFound {
		t.Errorf("unknown id: got %v, want ErrNotFound", err)
	}
}

// TestCancelRacesCompletion: Cancel arriving concurrently with job
// completion must resolve to exactly one terminal state, with the result
// available exactly when that state is done. Run under -race this also
// proves the finalize/cancel paths share the lock correctly.
func TestCancelRacesCompletion(t *testing.T) {
	for i := 0; i < 50; i++ {
		release := make(chan struct{})
		s := New(Config{Workers: 1, RunSim: blockingSim(nil, release)})

		job, err := s.Submit(specWithSeed(uint64(i + 1)))
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		waitState(t, s, job.ID(), StateRunning)

		// Release the simulation and cancel at the same instant.
		var cancelErr error
		done := make(chan struct{})
		go func() {
			defer close(done)
			cancelErr = s.Cancel(job.ID())
		}()
		close(release)
		<-done
		if cancelErr != nil {
			t.Fatalf("cancel: %v", cancelErr)
		}
		<-job.Done()

		st := job.Status()
		res, resErr := s.Result(job.ID())
		switch st.State {
		case StateDone:
			if resErr != nil || res == nil {
				t.Fatalf("iter %d: done job has no result: %v", i, resErr)
			}
		case StateCancelled:
			if resErr == nil {
				t.Fatalf("iter %d: cancelled job handed out a result", i)
			}
		default:
			t.Fatalf("iter %d: race ended in %s (%s)", i, st.State, st.Error)
		}
		// Exactly one terminal transition was recorded.
		terminals := 0
		for _, tr := range st.History {
			if tr.State.Terminal() {
				terminals++
			}
		}
		if terminals != 1 {
			t.Fatalf("iter %d: %d terminal transitions in history %+v", i, terminals, st.History)
		}
		closeService(t, s)
	}
}

// TestSubmitAtExactQueueCapacity: with the pool busy, exactly QueueDepth
// further submissions are admitted and the next one is the boundary 429,
// carrying a usable Retry-After; draining one admitted job's slot is not
// required for the accepted ones to finish.
func TestSubmitAtExactQueueCapacity(t *testing.T) {
	const depth = 3
	started := make(chan string, 8)
	release := make(chan struct{})
	s := New(Config{Workers: 1, QueueDepth: depth, RunSim: blockingSim(started, release)})
	defer closeService(t, s)

	running, err := s.Submit(specWithSeed(100))
	if err != nil {
		t.Fatalf("submit runner: %v", err)
	}
	<-started // dequeued: the queue is empty, the worker busy

	jobs := []*Job{running}
	for i := 1; i <= depth; i++ {
		j, err := s.Submit(specWithSeed(uint64(100 + i)))
		if err != nil {
			t.Fatalf("submit %d of %d (within capacity): %v", i, depth, err)
		}
		jobs = append(jobs, j)
	}

	_, err = s.Submit(specWithSeed(999))
	var se *Error
	if !errors.As(err, &se) || se.Kind != ErrQueueFull {
		t.Fatalf("submit beyond capacity: got %v, want ErrQueueFull", err)
	}
	if se.RetryAfter < time.Second || se.RetryAfter > time.Minute {
		t.Errorf("boundary Retry-After %v outside [1s, 60s]", se.RetryAfter)
	}
	if got := counter(t, s, "simsvc.jobs.rejected"); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}

	close(release)
	for i, j := range jobs {
		<-j.Done()
		if st := j.Status(); st.State != StateDone {
			t.Errorf("admitted job %d finished %s (%s), want done", i, st.State, st.Error)
		}
	}
}

// TestRetryAfterColdEstimate: before any job completes the EWMA is empty;
// the estimate must fall back to the oldest in-flight run's elapsed time
// instead of a flat guess, and both numbers surface in the registry.
func TestRetryAfterColdEstimate(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{Workers: 1, QueueDepth: 1, RunSim: blockingSim(nil, release)})
	defer closeService(t, s)
	defer close(release)

	job, err := s.Submit(specWithSeed(1))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitState(t, s, job.ID(), StateRunning)

	// Pretend the run started 40s ago; the cold estimate must track it.
	s.mu.Lock()
	if s.ewmaSec != 0 {
		t.Fatalf("EWMA %v warm before any completion", s.ewmaSec)
	}
	s.runStart[job] = time.Now().Add(-40 * time.Second)
	est := s.retryAfterLocked()
	s.mu.Unlock()
	if est < 40*time.Second {
		t.Errorf("cold estimate %v, want >= the 40s the in-flight run has already taken", est)
	}

	if got := counter(t, s, "simsvc.retry.estimate_ms"); got < 40_000 {
		t.Errorf("varz retry.estimate_ms = %d, want >= 40000", got)
	}
	if got := counter(t, s, "simsvc.retry.ewma_ms"); got != 0 {
		t.Errorf("varz retry.ewma_ms = %d before any completion, want 0", got)
	}
}

// TestConfigRunSimHook: the exported Config.RunSim hook substitutes the
// simulation entry point (the seam the cluster chaos harness scripts).
func TestConfigRunSimHook(t *testing.T) {
	s := New(Config{Workers: 1, RunSim: func(ctx context.Context, cfg doram.SimConfig) (*doram.SimResult, error) {
		return &doram.SimResult{AvgNSExecCycles: 42}, nil
	}})
	defer closeService(t, s)

	job, err := s.Submit(specWithSeed(1))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-job.Done()
	res, err := s.Result(job.ID())
	if err != nil || res.AvgNSExecCycles != 42 {
		t.Fatalf("result %+v err %v, want the hook's sentinel 42", res, err)
	}
	s.mu.Lock()
	seeded := s.ewmaSec
	s.mu.Unlock()
	if seeded <= 0 {
		t.Errorf("EWMA %v after a completion, want seeded from the first job", seeded)
	}
}

// TestLRUEviction: the cache holds at most CacheEntries results and evicts
// the least recently used spec.
func TestLRUEviction(t *testing.T) {
	s := New(Config{Workers: 1, CacheEntries: 2})
	s.runSim = func(ctx context.Context, cfg doram.SimConfig) (*doram.SimResult, error) {
		return &doram.SimResult{AvgNSExecCycles: float64(cfg.Seed)}, nil
	}
	defer closeService(t, s)

	run := func(seed uint64) {
		t.Helper()
		j, err := s.Submit(specWithSeed(seed))
		if err != nil {
			t.Fatalf("submit seed %d: %v", seed, err)
		}
		<-j.Done()
	}
	run(1)
	run(2)
	run(1) // refresh seed 1 so seed 2 is now LRU
	run(3) // evicts seed 2

	j, err := s.Submit(specWithSeed(2))
	if err != nil {
		t.Fatalf("resubmit seed 2: %v", err)
	}
	<-j.Done()
	if j.Status().CacheHit {
		t.Errorf("evicted spec still served from cache")
	}
	// Re-running seed 2 cached it again, evicting seed 1; seed 3 survives.
	j, err = s.Submit(specWithSeed(3))
	if err != nil {
		t.Fatalf("resubmit seed 3: %v", err)
	}
	if !j.Status().CacheHit {
		t.Errorf("recently used spec was evicted")
	}
}

// TestInjectableClock pins Config.Now to a stepping fake clock and checks
// every job-history timestamp comes from it — no wall-clock reads sneak
// into transition records, so tests can assert on times without sleeping.
func TestInjectableClock(t *testing.T) {
	base := time.Date(2030, 1, 2, 3, 4, 5, 0, time.UTC)
	var mu sync.Mutex
	step := 0
	fakeNow := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		step++
		return base.Add(time.Duration(step) * time.Second)
	}
	s := New(Config{Workers: 1, Now: fakeNow,
		RunSim: func(ctx context.Context, cfg doram.SimConfig) (*doram.SimResult, error) {
			return &doram.SimResult{}, nil
		}})
	defer closeService(t, s)

	job, err := s.Submit(specWithSeed(1))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st := waitState(t, s, job.ID(), StateDone)
	if len(st.History) < 3 {
		t.Fatalf("history has %d transitions, want >= 3 (queued/running/done)", len(st.History))
	}
	for i, tr := range st.History {
		if !tr.At.After(base) || tr.At.Location() != time.UTC {
			t.Errorf("transition %d (%s) at %v, want a fake-clock time after %v",
				i, tr.State, tr.At, base)
		}
		if i > 0 && tr.At.Before(st.History[i-1].At) {
			t.Errorf("transition %d (%s) at %v precedes transition %d at %v",
				i, tr.State, tr.At, i-1, st.History[i-1].At)
		}
	}
}

// TestTerminalJobRetention: terminal jobs are evicted oldest-first once
// more than RetainJobs of them are held, evicted ids answer ErrNotFound,
// and non-terminal jobs are never evicted no matter how much churn
// completes around them — only reaching a terminal state enrolls a job in
// the retention FIFO.
func TestTerminalJobRetention(t *testing.T) {
	stallRelease := make(chan struct{})
	runSim := func(ctx context.Context, cfg doram.SimConfig) (*doram.SimResult, error) {
		if cfg.Seed == 1 { // the long-running job the sweep must not evict
			select {
			case <-stallRelease:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return &doram.SimResult{AvgNSExecCycles: float64(cfg.Seed)}, nil
	}
	s := New(Config{Workers: 2, RetainJobs: 2, RunSim: runSim})
	defer closeService(t, s)

	stalled, err := s.Submit(specWithSeed(1))
	if err != nil {
		t.Fatalf("submit stalled: %v", err)
	}
	waitState(t, s, stalled.ID(), StateRunning)

	var ids []string
	for seed := uint64(2); seed <= 5; seed++ {
		j, err := s.Submit(specWithSeed(seed))
		if err != nil {
			t.Fatalf("submit seed %d: %v", seed, err)
		}
		waitState(t, s, j.ID(), StateDone)
		ids = append(ids, j.ID())
	}

	var se *Error
	for _, id := range ids[:2] { // oldest terminal jobs are gone
		if _, err := s.Status(id); !errors.As(err, &se) || se.Kind != ErrNotFound {
			t.Errorf("evicted job %s: got err %v, want ErrNotFound", id, err)
		}
	}
	for _, id := range ids[2:] { // newest RetainJobs stay queryable
		st, err := s.Status(id)
		if err != nil || st.State != StateDone {
			t.Errorf("retained job %s: err %v, state %+v", id, err, st.State)
		}
	}
	// The still-running job predates every evicted one and must survive.
	if st, err := s.Status(stalled.ID()); err != nil || st.State != StateRunning {
		t.Errorf("running job evicted or mutated: err %v, state %v", err, st.State)
	}

	// Once it completes it joins the FIFO and displaces the then-oldest.
	close(stallRelease)
	waitState(t, s, stalled.ID(), StateDone)
	if _, err := s.Status(ids[2]); !errors.As(err, &se) || se.Kind != ErrNotFound {
		t.Errorf("job %s should have been displaced by the completion: %v", ids[2], err)
	}
	if _, err := s.Status(stalled.ID()); err != nil {
		t.Errorf("freshly terminal job evicted immediately: %v", err)
	}
}

// TestRetainJobsUnlimited: a negative RetainJobs disables the sweep — every
// terminal job stays queryable, restoring the pre-retention behavior for
// operators who want a full audit trail.
func TestRetainJobsUnlimited(t *testing.T) {
	release := make(chan struct{})
	close(release) // sims complete immediately
	s := New(Config{Workers: 1, RetainJobs: -1, RunSim: blockingSim(nil, release)})
	defer closeService(t, s)

	var ids []string
	for seed := uint64(1); seed <= 8; seed++ {
		j, err := s.Submit(specWithSeed(seed))
		if err != nil {
			t.Fatalf("submit seed %d: %v", seed, err)
		}
		waitState(t, s, j.ID(), StateDone)
		ids = append(ids, j.ID())
	}
	for _, id := range ids {
		if _, err := s.Status(id); err != nil {
			t.Errorf("job %s evicted despite unlimited retention: %v", id, err)
		}
	}
}
