package simsvc

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// SSEContentType is the MIME type of a Server-Sent-Event stream.
const SSEContentType = "text/event-stream"

// DefaultSSEHeartbeat is the comment-line heartbeat cadence when
// Config.SSEHeartbeat is unset; it keeps idle streams alive through
// proxies that reap quiet connections.
const DefaultSSEHeartbeat = 15 * time.Second

// StreamOptions tunes ServeEventStream.
type StreamOptions struct {
	// JobID filters the stream to one job; "" streams everything. A
	// filtered stream ends after the job's terminal event.
	JobID string
	// Heartbeat is the comment-line cadence; 0 means DefaultSSEHeartbeat.
	Heartbeat time.Duration
	// After overrides the heartbeat timer source (tests drive it with a
	// hand-fired channel under a fake clock); nil means time.After.
	After func(time.Duration) <-chan time.Time
	// Terminal reports a synthesized terminal event for a job already
	// finished when the stream opens — the replay ring may have evicted
	// the real transition. Nil disables synthesis.
	Terminal func(jobID string) (Event, bool)
}

// lastEventID extracts the resume cursor: the standard Last-Event-ID
// header (set by browsers and this repo's clients on reconnect), with an
// `after` query parameter as the curl-friendly equivalent.
func lastEventID(r *http.Request) uint64 {
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get("after")
	}
	id, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0
	}
	return id
}

// writeSSE renders one event in the wire format: id, event name, one JSON
// data line, blank terminator.
func writeSSE(w io.Writer, ev Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data)
	return err
}

// ServeEventStream streams bus events to one client as Server-Sent Events:
// replay from Last-Event-ID (or ?after=N), then live events, with comment
// heartbeats between. The stream ends when the client disconnects, the bus
// closes (server drain), or — on a job-filtered stream — the job's
// terminal event has been sent. Exported so the cluster coordinator can
// serve its merged stream through the identical wire behaviour.
func ServeEventStream(w http.ResponseWriter, r *http.Request, bus *EventBus, opt StreamOptions) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, fmt.Errorf("simsvc: response writer cannot stream"))
		return
	}
	if opt.Heartbeat <= 0 {
		opt.Heartbeat = DefaultSSEHeartbeat
	}
	after := opt.After
	if after == nil {
		after = time.After
	}
	cursor := lastEventID(r)

	sub := bus.Subscribe(cursor)
	defer sub.Close()

	w.Header().Set("Content-Type", SSEContentType)
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	// A job-filtered stream for an already-terminal job: the terminal
	// transition is either in the replay (written below) or evicted from
	// the ring. Synthesize it for first-time subscribers so they never
	// hang on a job that will produce no more events; a resuming client
	// (cursor > 0) already saw it.
	var synth *Event
	if opt.JobID != "" && opt.Terminal != nil && cursor == 0 {
		if ev, terminal := opt.Terminal(opt.JobID); terminal {
			synth = &ev
		}
	}

	emit := func(ev Event) (done bool, err error) {
		if opt.JobID != "" && ev.JobID != opt.JobID {
			return false, nil
		}
		if err := writeSSE(w, ev); err != nil {
			return true, err
		}
		flusher.Flush()
		return opt.JobID != "" && ev.State.Terminal(), nil
	}

	// Drain the buffered replay first so the synthesized terminal check
	// below sees everything the ring could offer.
	for {
		select {
		case ev, ok := <-sub.C:
			if !ok {
				return
			}
			if done, err := emit(ev); done || err != nil {
				return
			}
			continue
		default:
		}
		break
	}
	if synth != nil {
		// Nothing in the replay closed the job (else emit returned), so
		// the client needs the synthesized terminal event.
		synth.Seq = bus.LastSeq()
		if done, err := emit(*synth); done || err != nil {
			return
		}
	}

	hb := after(opt.Heartbeat)
	for {
		select {
		case <-r.Context().Done():
			return
		case <-hb:
			if _, err := io.WriteString(w, ": hb\n\n"); err != nil {
				return
			}
			flusher.Flush()
			hb = after(opt.Heartbeat)
		case ev, ok := <-sub.C:
			if !ok {
				return // bus closed (drain) or subscriber dropped
			}
			if done, err := emit(ev); done || err != nil {
				return
			}
		}
	}
}

// ---- client side ----

// SSEEvent is one parsed server-sent event as received off the wire.
type SSEEvent struct {
	ID    string // "id:" field, the resume cursor
	Event string // "event:" field (the Event.Kind)
	Data  string // "data:" payload, JSON for this repo's streams
}

// Decode unmarshals the event payload into the bus event type.
func (e SSEEvent) Decode() (Event, error) {
	var ev Event
	err := json.Unmarshal([]byte(e.Data), &ev)
	return ev, err
}

// SSEScanner incrementally parses a Server-Sent-Event stream — the shared
// client for doramctl tail/wait and the cluster coordinator's worker
// stream fan-in. Comment lines (heartbeats) are skipped.
type SSEScanner struct {
	sc *bufio.Scanner
}

// NewSSEScanner wraps a response body (or any reader) for event parsing.
func NewSSEScanner(r io.Reader) *SSEScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &SSEScanner{sc: sc}
}

// Next returns the next event, or io.EOF at end of stream.
func (s *SSEScanner) Next() (SSEEvent, error) {
	var ev SSEEvent
	var data []string
	seen := false
	for s.sc.Scan() {
		line := s.sc.Text()
		switch {
		case line == "":
			if seen {
				ev.Data = strings.Join(data, "\n")
				return ev, nil
			}
			// Blank separator with no fields yet (e.g. after a comment):
			// keep scanning.
		case strings.HasPrefix(line, ":"):
			// Comment / heartbeat.
		case strings.HasPrefix(line, "id:"):
			ev.ID, seen = strings.TrimSpace(line[len("id:"):]), true
		case strings.HasPrefix(line, "event:"):
			ev.Event, seen = strings.TrimSpace(line[len("event:"):]), true
		case strings.HasPrefix(line, "data:"):
			data, seen = append(data, strings.TrimSpace(line[len("data:"):])), true
		}
	}
	if err := s.sc.Err(); err != nil {
		return SSEEvent{}, err
	}
	if seen {
		ev.Data = strings.Join(data, "\n")
		return ev, nil
	}
	return SSEEvent{}, io.EOF
}
