package simsvc

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

// collectJobEvents tails url until the stream ends, returning the decoded
// bus events in arrival order.
func collectJobEvents(t *testing.T, client *http.Client, url, lastEventID string) []Event {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("get %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("get %s: status %d: %s", url, resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != SSEContentType {
		t.Fatalf("content-type = %q, want %q", ct, SSEContentType)
	}
	var events []Event
	sc := NewSSEScanner(resp.Body)
	for {
		raw, err := sc.Next()
		if err == io.EOF {
			return events
		}
		if err != nil {
			t.Fatalf("scan: %v", err)
		}
		ev, err := raw.Decode()
		if err != nil {
			t.Fatalf("decode %q: %v", raw.Data, err)
		}
		events = append(events, ev)
	}
}

// TestSSEJobStreamOrdering submits a job and tails its event stream: the
// transitions must arrive in lifecycle order with strictly increasing
// sequence numbers, and the stream must end cleanly (clean teardown) after
// the terminal event — the client's read loop returns EOF without a
// timeout or disconnect.
func TestSSEJobStreamOrdering(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{Workers: 1, RunSim: blockingSim(nil, release)})
	defer closeService(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	job, err := s.Submit(specWithSeed(1))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	done := make(chan []Event, 1)
	go func() {
		done <- collectJobEvents(t, srv.Client(),
			srv.URL+"/v1/jobs/"+job.ID()+"/events", "")
	}()
	waitState(t, s, job.ID(), StateRunning)
	close(release)

	events := <-done
	var states []State
	for i, ev := range events {
		if ev.Kind != EventJob || ev.JobID != job.ID() {
			t.Errorf("event %d: kind=%q job=%q, want job event for %q", i, ev.Kind, ev.JobID, job.ID())
		}
		if i > 0 && ev.Seq <= events[i-1].Seq {
			t.Errorf("event %d: seq %d not after %d", i, ev.Seq, events[i-1].Seq)
		}
		states = append(states, ev.State)
	}
	// The tail may attach after "queued" was published but always within
	// the replay ring, so the full lifecycle must be present.
	want := []State{StateQueued, StateRunning, StateDone}
	if len(states) != len(want) {
		t.Fatalf("states = %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("states = %v, want %v", states, want)
		}
	}
	last := events[len(events)-1]
	if last.Completed != 1 {
		t.Errorf("terminal event completed gauge = %d, want 1", last.Completed)
	}
}

// TestSSEServiceStreamGauges tails the service-wide stream across a
// two-job sweep and checks the load gauges ride along: queue depth while
// the worker is busy, and a completed count that reaches the sweep size
// on the final terminal event — tail clients see sweep progress without
// polling.
func TestSSEServiceStreamGauges(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 2)
	s := New(Config{Workers: 1, QueueDepth: 4, RunSim: blockingSim(started, release)})
	defer closeService(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var ids []string
	for seed := uint64(1); seed <= 2; seed++ {
		job, err := s.Submit(specWithSeed(seed))
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		ids = append(ids, job.ID())
	}
	<-started // first job running, second queued
	close(release)
	for _, id := range ids {
		waitState(t, s, id, StateDone)
	}

	// Replay-only read: everything already happened; the ring serves it.
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/events", nil)
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatalf("get /events: %v", err)
	}
	defer resp.Body.Close()

	sc := NewSSEScanner(resp.Body)
	var events []Event
	for len(events) < 6 { // 2 jobs x (queued, running, done)
		raw, err := sc.Next()
		if err != nil {
			t.Fatalf("scan after %d events: %v", len(events), err)
		}
		ev, err := raw.Decode()
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		events = append(events, ev)
	}
	cancel()

	sawQueueDepth := false
	for _, ev := range events {
		if ev.QueueDepth > 0 {
			sawQueueDepth = true
		}
	}
	if !sawQueueDepth {
		t.Errorf("no event carried a positive queue depth; events: %+v", events)
	}
	if last := events[len(events)-1]; last.Completed != 2 {
		t.Errorf("final completed gauge = %d, want 2", last.Completed)
	}
}

// TestSSEHeartbeatCadence drives the stream's heartbeat timer by hand
// through the injectable After hook: each fire must produce exactly one
// comment line, and the timer must re-arm with the configured cadence —
// all without wall-clock sleeps.
func TestSSEHeartbeatCadence(t *testing.T) {
	hb := make(chan time.Time)
	arms := make(chan time.Duration, 16)
	s := New(Config{
		Workers:      1,
		SSEHeartbeat: 42 * time.Second,
		After: func(d time.Duration) <-chan time.Time {
			arms <- d
			return hb
		},
	})
	defer closeService(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/events", nil)
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatalf("get /events: %v", err)
	}
	defer resp.Body.Close()

	if d := <-arms; d != 42*time.Second {
		t.Fatalf("first arm duration = %v, want 42s", d)
	}

	// Fire the timer three times; each fire must re-arm and emit one
	// comment line. Reading a line at a time proves the bytes flush
	// promptly rather than sitting in a buffer.
	lines := make(chan string)
	go func() {
		buf := make([]byte, 256)
		for {
			n, err := resp.Body.Read(buf)
			if err != nil {
				close(lines)
				return
			}
			lines <- string(buf[:n])
		}
	}()
	for i := 0; i < 3; i++ {
		hb <- time.Time{}
		if d := <-arms; d != 42*time.Second {
			t.Fatalf("re-arm %d duration = %v, want 42s", i, d)
		}
		select {
		case got := <-lines:
			if got != ": hb\n\n" {
				t.Fatalf("heartbeat %d: read %q, want %q", i, got, ": hb\n\n")
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("heartbeat %d never arrived", i)
		}
	}
}

// TestSSELastEventIDResume disconnects mid-stream and reconnects with
// Last-Event-ID: the second read must resume exactly after the cursor —
// no replayed duplicates, no gaps — and still end cleanly at the job's
// terminal event.
func TestSSELastEventIDResume(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{Workers: 1, RunSim: blockingSim(nil, release)})
	defer closeService(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	job, err := s.Submit(specWithSeed(1))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitState(t, s, job.ID(), StateRunning)

	// First connection: read queued+running, then drop the stream.
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET",
		srv.URL+"/v1/jobs/"+job.ID()+"/events", nil)
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatalf("first get: %v", err)
	}
	sc := NewSSEScanner(resp.Body)
	var cursor string
	for i := 0; i < 2; i++ {
		raw, err := sc.Next()
		if err != nil {
			t.Fatalf("first stream event %d: %v", i, err)
		}
		cursor = raw.ID
	}
	cancel()
	resp.Body.Close()

	close(release)
	waitState(t, s, job.ID(), StateDone)

	// Reconnect with the cursor: only events after it may arrive.
	events := collectJobEvents(t, srv.Client(),
		srv.URL+"/v1/jobs/"+job.ID()+"/events", cursor)
	if len(events) != 1 {
		t.Fatalf("resumed stream delivered %d events (%+v), want 1", len(events), events)
	}
	after, _ := strconv.ParseUint(cursor, 10, 64)
	if ev := events[0]; ev.State != StateDone || ev.Seq <= after {
		t.Errorf("resumed event = state %s seq %d, want done with seq > %s", ev.State, ev.Seq, cursor)
	}
}

// TestSSEAlreadyTerminalJob opens a job stream after the job finished and
// its transitions were evicted from a tiny replay ring: the handler must
// synthesize the terminal event so the client never hangs on a stream
// that will produce nothing.
func TestSSEAlreadyTerminalJob(t *testing.T) {
	release := make(chan struct{})
	close(release)
	s := New(Config{Workers: 1, EventHistory: 1, RunSim: blockingSim(nil, release)})
	defer closeService(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	job, err := s.Submit(specWithSeed(1))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitState(t, s, job.ID(), StateDone)
	// Push the job's terminal transition out of the one-slot ring.
	s.bus.Publish(Event{Kind: EventService, Message: "filler"})

	events := collectJobEvents(t, srv.Client(),
		srv.URL+"/v1/jobs/"+job.ID()+"/events", "")
	if len(events) != 1 {
		t.Fatalf("stream delivered %d events (%+v), want 1 synthesized terminal", len(events), events)
	}
	if ev := events[0]; ev.State != StateDone || ev.JobID != job.ID() {
		t.Errorf("synthesized event = %+v, want done for %s", ev, job.ID())
	}
}

// TestSSETeardownOnDrain: a live service-wide stream must end (EOF, not
// hang) when the service drains, after delivering the draining marker.
func TestSSETeardownOnDrain(t *testing.T) {
	s := New(Config{Workers: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/events")
	if err != nil {
		t.Fatalf("get /events: %v", err)
	}
	defer resp.Body.Close()

	done := make(chan []Event, 1)
	go func() {
		var events []Event
		sc := NewSSEScanner(resp.Body)
		for {
			raw, err := sc.Next()
			if err != nil {
				done <- events
				return
			}
			if ev, err := raw.Decode(); err == nil {
				events = append(events, ev)
			}
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case events := <-done:
		foundDrain := false
		for _, ev := range events {
			if ev.Kind == EventService && ev.Message == "draining" {
				foundDrain = true
			}
		}
		if !foundDrain {
			t.Errorf("stream ended without the draining marker; events: %+v", events)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not end after service drain")
	}
}

// TestSSEUnknownJob404s: the job stream endpoint must reject unknown IDs
// up front with a JSON 404, not commit to an empty event stream.
func TestSSEUnknownJob404s(t *testing.T) {
	s := New(Config{Workers: 1})
	defer closeService(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/v1/jobs/nope/events")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

// TestEventBusDropsSlowSubscriber: a subscriber that stops draining is
// dropped (channel closed) rather than blocking publishers, and recovers
// by resubscribing from its last seen cursor.
func TestEventBusDropsSlowSubscriber(t *testing.T) {
	bus := NewEventBus(4)
	sub := bus.Subscribe(0)
	// The subscription buffer is replay(0)+ringCap; overflow it without
	// ever reading.
	for i := 0; i < 10; i++ {
		bus.Publish(Event{Kind: EventService, Message: fmt.Sprintf("m%d", i)})
	}
	var last uint64
	open := true
	for open {
		select {
		case ev, ok := <-sub.C:
			if !ok {
				open = false
				break
			}
			last = ev.Seq
		default:
			t.Fatal("subscriber channel neither closed nor readable after overflow")
		}
	}
	// Resubscribe from the cursor: the ring retains the last 4 events.
	sub2 := bus.Subscribe(last)
	defer sub2.Close()
	var got []uint64
	for {
		select {
		case ev := <-sub2.C:
			got = append(got, ev.Seq)
			continue
		default:
		}
		break
	}
	if len(got) == 0 {
		t.Fatal("resubscribe replayed nothing")
	}
	for i, seq := range got {
		if seq <= last {
			t.Errorf("replayed seq %d at %d not after cursor %d", seq, i, last)
		}
		if i > 0 && seq != got[i-1]+1 {
			t.Errorf("replay gap: %v", got)
		}
	}
	if got[len(got)-1] != bus.LastSeq() {
		t.Errorf("replay ends at %d, want last seq %d", got[len(got)-1], bus.LastSeq())
	}
}
