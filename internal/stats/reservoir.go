package stats

import (
	"doram/internal/xrand"
)

// Reservoir is a fixed-capacity uniform sample of an unbounded stream
// (Vitter's Algorithm R), seeded so a given observation order reproduces
// the same sample. It is the streaming percentile path for sustained-load
// runs: a 10^7-request doramload campaign keeps k samples instead of every
// latency, trading exactness for O(k) memory. Quantile estimates converge
// at O(1/sqrt(k)); the default doramload capacity of 65536 keeps p99.9
// within a fraction of a percent on smooth distributions.
//
// Not safe for concurrent use; callers serialize Observe.
type Reservoir struct {
	cap     int
	n       uint64
	samples []float64
	rng     *xrand.Rand
}

// NewReservoir builds a reservoir holding at most k samples. It panics if
// k <= 0, because that is a programming error in the caller.
func NewReservoir(k int, seed uint64) *Reservoir {
	if k <= 0 {
		panic("stats: reservoir capacity must be positive")
	}
	return &Reservoir{cap: k, samples: make([]float64, 0, min(k, 1024)), rng: xrand.New(seed)}
}

// Observe feeds one sample. After the first k samples, each new sample
// replaces a random slot with probability k/n, keeping the reservoir a
// uniform sample of everything seen.
func (r *Reservoir) Observe(v float64) {
	r.n++
	if len(r.samples) < r.cap {
		r.samples = append(r.samples, v)
		return
	}
	if j := r.rng.Uint64n(r.n); j < uint64(r.cap) {
		r.samples[j] = v
	}
}

// Count returns how many samples were observed (not how many are held).
func (r *Reservoir) Count() uint64 { return r.n }

// Len returns how many samples are currently held (min(count, capacity)).
func (r *Reservoir) Len() int { return len(r.samples) }

// Quantile estimates the p-th percentile (p in [0,100], clamped) from the
// held sample using the nearest-rank rule. It returns 0 before any
// observation. Exact while count <= capacity.
func (r *Reservoir) Quantile(p float64) float64 {
	return Quantile(r.samples, p)
}
