package stats

import (
	"math"
	"reflect"
	"testing"
)

// TestLatencySumSaturation: sums past MaxUint64 clamp (sticky) instead of
// wrapping to a plausible-looking garbage mean — the sustained-load case
// of 1e7+ large samples.
func TestLatencySumSaturation(t *testing.T) {
	var l Latency
	l.Observe(math.MaxUint64)
	if l.Saturated() {
		t.Fatal("one sample should not saturate")
	}
	l.Observe(10)
	if !l.Saturated() {
		t.Fatal("sum past MaxUint64 must saturate")
	}
	if l.Sum() != math.MaxUint64 {
		t.Fatalf("saturated sum = %d, want MaxUint64", l.Sum())
	}
	if l.Count() != 2 || l.Max() != math.MaxUint64 || l.Min() != 10 {
		t.Fatalf("count/min/max wrong: %s", l.String())
	}
	l.Observe(1) // sticky
	if l.Sum() != math.MaxUint64 || l.Count() != 3 {
		t.Fatalf("saturation must be sticky: sum=%d count=%d", l.Sum(), l.Count())
	}

	// Saturation propagates through both merge paths.
	var m Latency
	m.Observe(7)
	m.Merge(l)
	if !m.Saturated() || m.Sum() != math.MaxUint64 || m.Count() != 4 {
		t.Fatalf("Merge lost saturation: %s", m.String())
	}
	var f Latency
	f.Observe(math.MaxUint64 - 3)
	var g Latency
	g.Observe(1000)
	f.MergeFrom(g)
	if !f.Saturated() || f.Sum() != math.MaxUint64 {
		t.Fatalf("MergeFrom overflow not saturated: %s", f.String())
	}
}

// TestPercentileHugeCounts grows a histogram past 2^53 samples by repeated
// doubling and checks the percentile rank math neither overflows nor falls
// off the end of the buckets (the float64 rank can exceed the population
// up there; it must clamp).
func TestPercentileHugeCounts(t *testing.T) {
	h := NewHistogram([]uint64{10, 100, 1000})
	for _, v := range []uint64{5, 50, 500, 5000} {
		h.Observe(v)
	}
	// Double via merge with a snapshot each round: 4 * 2^54 > 2^53 samples
	// (still well under 2^64, so the counters themselves cannot wrap).
	for i := 0; i < 54; i++ {
		snap := NewHistogram([]uint64{10, 100, 1000})
		if err := snap.MergeFrom(h); err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		if err := h.MergeFrom(snap); err != nil {
			t.Fatalf("merge %d: %v", i, err)
		}
	}
	lat := h.Latency()
	if lat.Count() <= 1<<53 {
		t.Fatalf("count = %d, want > 2^53", lat.Count())
	}
	if got := h.Percentile(100); got != 5000 {
		t.Fatalf("p100 = %d, want observed max 5000", got)
	}
	if got := h.Percentile(50); got != 100 {
		t.Fatalf("p50 = %d, want bucket bound 100", got)
	}
	s := h.Summary()
	if s.P50 != 100 || s.P99 != 5000 {
		t.Fatalf("summary = %+v, want P50 100, P99 5000", s)
	}
	satLat := h.Latency()
	if !satLat.Saturated() {
		t.Fatal("doubling sums past MaxUint64 should have saturated")
	}
}

func TestQuantile(t *testing.T) {
	if got := Quantile(nil, 50); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	xs := []float64{9, 1, 7, 3, 5} // sorted: 1 3 5 7 9
	cases := []struct {
		p    float64
		want float64
	}{
		{-5, 1}, {0, 1}, {10, 1}, {20, 1}, {40, 3}, {50, 5}, {60, 5},
		{80, 7}, {90, 9}, {100, 9}, {250, 9},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.p); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !reflect.DeepEqual(xs, []float64{9, 1, 7, 3, 5}) {
		t.Fatal("Quantile must not mutate its input")
	}
}

// TestReservoirExactWhileSmall: below capacity the reservoir holds every
// sample, so quantiles are exact.
func TestReservoirExactWhileSmall(t *testing.T) {
	r := NewReservoir(16, 1)
	for _, v := range []float64{4, 2, 8, 6} {
		r.Observe(v)
	}
	if r.Count() != 4 || r.Len() != 4 {
		t.Fatalf("count=%d len=%d, want 4/4", r.Count(), r.Len())
	}
	if got := r.Quantile(50); got != 4 {
		t.Fatalf("p50 = %v, want 4", got)
	}
	if got := r.Quantile(100); got != 8 {
		t.Fatalf("p100 = %v, want 8", got)
	}
}

// TestReservoirStreamingAccuracy: one million uniform samples through a
// 4096-slot reservoir estimate quantiles within a few percent. The seed is
// fixed, so this is deterministic, not flaky.
func TestReservoirStreamingAccuracy(t *testing.T) {
	r := NewReservoir(4096, 42)
	n := 1_000_000
	for i := 0; i < n; i++ {
		// A deterministic low-discrepancy sweep of [0,1).
		r.Observe(math.Mod(float64(i)*0.6180339887498949, 1))
	}
	if r.Count() != uint64(n) || r.Len() != 4096 {
		t.Fatalf("count=%d len=%d", r.Count(), r.Len())
	}
	for _, p := range []float64{10, 50, 90, 99} {
		got := r.Quantile(p)
		want := p / 100
		if math.Abs(got-want) > 0.03 {
			t.Errorf("q%v = %v, want ~%v", p, got, want)
		}
	}
}

// TestReservoirDeterministic: identical seeds and observation order give
// bit-identical reservoirs.
func TestReservoirDeterministic(t *testing.T) {
	build := func(seed uint64) []float64 {
		r := NewReservoir(64, seed)
		for i := 0; i < 10_000; i++ {
			r.Observe(float64(i * 31 % 977))
		}
		out := make([]float64, r.Len())
		copy(out, r.samples)
		return out
	}
	if !reflect.DeepEqual(build(7), build(7)) {
		t.Fatal("same seed must replay bit-identically")
	}
	if reflect.DeepEqual(build(7), build(8)) {
		t.Fatal("different seeds should sample differently")
	}
}
