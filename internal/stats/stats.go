// Package stats provides lightweight counters and latency aggregates used
// throughout the simulator. All values are accumulated in simulation cycles
// (or plain event counts) and converted to nanoseconds only at reporting
// time by the caller.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Latency accumulates a stream of latency samples, tracking count, sum,
// min and max. It deliberately avoids storing samples so that million-event
// simulations stay cheap; use Histogram when a distribution is needed.
//
// The sum saturates at MaxUint64 instead of wrapping: a sustained-load run
// (10^7+ samples of up to 2^44 cycles each) can legitimately exceed 64 bits,
// and a silently wrapped sum would report a plausible-looking but garbage
// mean. Once saturated (see Saturated), Mean is a lower bound.
type Latency struct {
	count     uint64
	sum       uint64
	min       uint64
	max       uint64
	saturated bool
}

// Observe records one latency sample.
func (l *Latency) Observe(v uint64) {
	if l.count == 0 || v < l.min {
		l.min = v
	}
	if v > l.max {
		l.max = v
	}
	l.count++
	l.addSum(v)
}

// addSum adds v to the running sum, saturating at MaxUint64 (sticky).
func (l *Latency) addSum(v uint64) {
	if l.saturated || l.sum > math.MaxUint64-v {
		l.sum = math.MaxUint64
		l.saturated = true
		return
	}
	l.sum += v
}

// Saturated reports whether the sum clamped at MaxUint64; when true, Sum
// and Mean are lower bounds rather than exact values.
func (l *Latency) Saturated() bool { return l.saturated }

// Count returns the number of samples observed.
func (l *Latency) Count() uint64 { return l.count }

// Sum returns the sum of all samples.
func (l *Latency) Sum() uint64 { return l.sum }

// Min returns the smallest sample, or 0 if no samples were observed.
func (l *Latency) Min() uint64 { return l.min }

// Max returns the largest sample, or 0 if no samples were observed.
func (l *Latency) Max() uint64 { return l.max }

// Mean returns the average sample, or 0 if no samples were observed.
func (l *Latency) Mean() float64 {
	if l.count == 0 {
		return 0
	}
	return float64(l.sum) / float64(l.count)
}

// LatencyFromParts reconstructs an aggregate from its exported parts
// (Count/Sum/Min/Max) — the inverse of reading them out, used when a
// latency stream crosses a serialization boundary (the doramd wire format)
// and must be rebuilt without loss. A zero count yields the zero Latency
// regardless of the other parts.
func LatencyFromParts(count, sum, min, max uint64) Latency {
	if count == 0 {
		return Latency{}
	}
	return Latency{count: count, sum: sum, min: min, max: max}
}

// Merge folds other into l as if all of other's samples had been observed
// on l directly.
func (l *Latency) Merge(other Latency) {
	if other.count == 0 {
		return
	}
	if l.count == 0 {
		*l = other
		return
	}
	if other.min < l.min {
		l.min = other.min
	}
	if other.max > l.max {
		l.max = other.max
	}
	l.count += other.count
	if other.saturated {
		l.saturated = true
		l.sum = math.MaxUint64
	} else {
		l.addSum(other.sum)
	}
}

// Reset clears all samples.
func (l *Latency) Reset() { *l = Latency{} }

// String formats the aggregate for debugging output.
func (l *Latency) String() string {
	return fmt.Sprintf("n=%d mean=%.1f min=%d max=%d", l.count, l.Mean(), l.min, l.max)
}

// Histogram is a fixed-boundary latency histogram. Boundaries are upper
// bounds of each bucket; samples above the last boundary land in an
// implicit overflow bucket.
type Histogram struct {
	bounds []uint64
	counts []uint64
	lat    Latency
}

// NewHistogram builds a histogram with the given ascending bucket upper
// bounds. It panics if bounds are empty or not strictly ascending, because
// that is a programming error in the caller.
func NewHistogram(bounds []uint64) *Histogram {
	if len(bounds) == 0 {
		panic("stats: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly ascending")
		}
	}
	b := make([]uint64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i]++
	h.lat.Observe(v)
}

// Bucket returns the count of samples in bucket i, where i == len(bounds)
// addresses the overflow bucket.
func (h *Histogram) Bucket(i int) uint64 { return h.counts[i] }

// NumBuckets returns the number of buckets including overflow.
func (h *Histogram) NumBuckets() int { return len(h.counts) }

// Latency returns the scalar aggregate over all observed samples.
func (h *Histogram) Latency() Latency { return h.lat }

// Bounds returns a copy of the bucket upper bounds (overflow excluded).
func (h *Histogram) Bounds() []uint64 {
	out := make([]uint64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// MergeFrom folds another latency aggregate into this one, as if every
// sample observed by o had been observed here.
func (l *Latency) MergeFrom(o Latency) {
	if o.count == 0 {
		return
	}
	if l.count == 0 || o.min < l.min {
		l.min = o.min
	}
	if o.max > l.max {
		l.max = o.max
	}
	l.count += o.count
	if o.saturated {
		l.saturated = true
		l.sum = math.MaxUint64
	} else {
		l.addSum(o.sum)
	}
}

// MergeFrom folds another histogram with identical bucket bounds into this
// one — the cross-run aggregation path (a serving process accumulating
// per-job latency attributions). Mismatched bounds are a programming
// error, reported rather than panicking because the source histogram may
// have crossed a process boundary.
func (h *Histogram) MergeFrom(o *Histogram) error {
	if o == nil {
		return nil
	}
	if len(h.bounds) != len(o.bounds) {
		return fmt.Errorf("stats: merging histograms with %d and %d bounds", len(h.bounds), len(o.bounds))
	}
	for i, b := range h.bounds {
		if o.bounds[i] != b {
			return fmt.Errorf("stats: merging histograms with mismatched bound %d (%d vs %d)", i, b, o.bounds[i])
		}
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.lat.MergeFrom(o.lat)
	return nil
}

// Percentile returns an upper bound for the p-th percentile using bucket
// boundaries. The overflow bucket reports the observed max. Out-of-contract
// inputs are clamped rather than rejected: p <= 0 returns the observed min
// (the tightest lower bound any percentile can have) and p > 100 behaves as
// p = 100. With no samples observed it returns 0. p must not be NaN.
func (h *Histogram) Percentile(p float64) uint64 {
	if h.lat.count == 0 {
		return 0
	}
	if p <= 0 {
		return h.lat.min
	}
	if p > 100 {
		p = 100
	}
	target := uint64(math.Ceil(p / 100 * float64(h.lat.count)))
	if target == 0 {
		target = 1
	}
	// float64(count) rounds above 2^53 samples, so the computed rank can
	// exceed the population; clamp so p=100 still lands in the last
	// occupied bucket instead of falling through the loop.
	if target > h.lat.count {
		target = h.lat.count
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i == len(h.bounds) {
				return h.lat.max
			}
			return h.bounds[i]
		}
	}
	return h.lat.max
}

// Summary is a one-call digest of a histogram: scalar mean plus the
// bucket-bound percentiles most reports want. Percentile semantics match
// Histogram.Percentile exactly (upper bounds; overflow reports the max).
type Summary struct {
	Count uint64
	Mean  float64
	P50   uint64
	P95   uint64
	P99   uint64
}

// Summary computes {count, mean, p50, p95, p99} in a single pass over the
// buckets, equivalent to (but cheaper than) three Percentile calls.
func (h *Histogram) Summary() Summary {
	s := Summary{Count: h.lat.count, Mean: h.lat.Mean()}
	if h.lat.count == 0 {
		return s
	}
	target := func(p float64) uint64 {
		t := uint64(math.Ceil(p / 100 * float64(h.lat.count)))
		if t == 0 {
			t = 1
		}
		if t > h.lat.count { // float rounding above 2^53 samples
			t = h.lat.count
		}
		return t
	}
	t50, t95, t99 := target(50), target(95), target(99)
	value := func(i int) uint64 {
		if i == len(h.bounds) {
			return h.lat.max
		}
		return h.bounds[i]
	}
	var cum uint64
	done := 0
	for i, c := range h.counts {
		cum += c
		if done < 1 && cum >= t50 {
			s.P50 = value(i)
			done = 1
		}
		if done < 2 && cum >= t95 {
			s.P95 = value(i)
			done = 2
		}
		if done < 3 && cum >= t99 {
			s.P99 = value(i)
			done = 3
		}
		if done == 3 {
			break
		}
	}
	return s
}

// Utilization tracks how many cycles a resource was busy out of a window.
type Utilization struct {
	busy  uint64
	total uint64
}

// AddBusy records d busy cycles.
func (u *Utilization) AddBusy(d uint64) { u.busy += d }

// AddTotal records d elapsed cycles.
func (u *Utilization) AddTotal(d uint64) { u.total += d }

// Value returns busy/total in [0,1], or 0 when no cycles elapsed.
func (u *Utilization) Value() float64 {
	if u.total == 0 {
		return 0
	}
	return float64(u.busy) / float64(u.total)
}

// Busy returns the accumulated busy cycles.
func (u *Utilization) Busy() uint64 { return u.busy }

// Total returns the accumulated elapsed cycles.
func (u *Utilization) Total() uint64 { return u.total }

// GeoMean returns the geometric mean of xs, ignoring non-positive entries.
// It returns 0 when no positive entries exist.
func GeoMean(xs []float64) float64 {
	var logSum float64
	var n int
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Quantile returns the exact nearest-rank p-th percentile of xs (p in
// [0,100], clamped). It sorts a copy, leaving xs untouched, and returns 0
// for an empty slice. Unlike Histogram.Percentile this is exact rather
// than a bucket upper bound — use it when the samples fit in memory, and
// Reservoir when they do not.
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return sortedQuantile(sorted, p)
}

// sortedQuantile is the nearest-rank rule over already-sorted samples.
func sortedQuantile(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p > 100 {
		p = 100
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
