package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("value = %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("reset failed")
	}
}

func TestLatencyAggregates(t *testing.T) {
	var l Latency
	for _, v := range []uint64{5, 1, 9, 3} {
		l.Observe(v)
	}
	if l.Count() != 4 || l.Sum() != 18 || l.Min() != 1 || l.Max() != 9 {
		t.Fatalf("aggregates: %s", l.String())
	}
	if l.Mean() != 4.5 {
		t.Fatalf("mean = %v", l.Mean())
	}
	l.Reset()
	if l.Count() != 0 || l.Mean() != 0 {
		t.Fatal("reset failed")
	}
}

func TestLatencyMerge(t *testing.T) {
	var a, b Latency
	a.Observe(2)
	a.Observe(10)
	b.Observe(1)
	b.Observe(4)
	a.Merge(b)
	if a.Count() != 4 || a.Min() != 1 || a.Max() != 10 || a.Sum() != 17 {
		t.Fatalf("merged: %s", a.String())
	}
	// Merging empty is a no-op; merging into empty copies.
	var e Latency
	a.Merge(e)
	if a.Count() != 4 {
		t.Fatal("merge with empty changed state")
	}
	e.Merge(a)
	if e.Count() != 4 || e.Min() != 1 {
		t.Fatal("merge into empty failed")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]uint64{10, 100, 1000})
	for _, v := range []uint64{5, 10, 11, 99, 5000} {
		h.Observe(v)
	}
	if h.NumBuckets() != 4 {
		t.Fatalf("buckets = %d", h.NumBuckets())
	}
	want := []uint64{2, 2, 0, 1}
	for i, w := range want {
		if h.Bucket(i) != w {
			t.Fatalf("bucket %d = %d, want %d", i, h.Bucket(i), w)
		}
	}
	if lat := h.Latency(); lat.Count() != 5 {
		t.Fatal("scalar aggregate missing samples")
	}
	if p := h.Percentile(50); p != 10 && p != 100 {
		t.Fatalf("p50 = %d", p)
	}
	if p := h.Percentile(100); p != 5000 {
		t.Fatalf("p100 = %d, want observed max", p)
	}
}

func TestHistogramPercentileTable(t *testing.T) {
	multi := NewHistogram([]uint64{10, 100, 1000})
	for _, v := range []uint64{5, 10, 11, 99, 5000} {
		multi.Observe(v)
	}
	single := NewHistogram([]uint64{10, 100})
	single.Observe(42)
	overflow := NewHistogram([]uint64{10})
	for _, v := range []uint64{500, 900} {
		overflow.Observe(v)
	}
	empty := NewHistogram([]uint64{10})

	cases := []struct {
		name string
		h    *Histogram
		p    float64
		want uint64
	}{
		{"p0 clamps to observed min", multi, 0, 5},
		{"negative p clamps to observed min", multi, -7, 5},
		{"p50 mid-bucket bound", multi, 50, 100},
		{"p100 reports observed max", multi, 100, 5000},
		{"p>100 behaves as p100", multi, 250, 5000},
		{"tiny p still counts one sample", multi, 1e-9, 10},
		{"single sample p0", single, 0, 42},
		{"single sample p50", single, 50, 100},
		{"single sample p100 bounds above", single, 100, 100},
		{"overflow-only p50", overflow, 50, 900},
		{"overflow-only p0", overflow, 0, 500},
		{"empty histogram", empty, 50, 0},
		{"empty histogram p0", empty, 0, 0},
	}
	for _, tc := range cases {
		if got := tc.h.Percentile(tc.p); got != tc.want {
			t.Errorf("%s: Percentile(%v) = %d, want %d", tc.name, tc.p, got, tc.want)
		}
	}
}

func TestHistogramSummaryTable(t *testing.T) {
	multi := NewHistogram([]uint64{10, 100, 1000})
	for _, v := range []uint64{5, 10, 11, 99, 5000} {
		multi.Observe(v)
	}
	single := NewHistogram([]uint64{10, 100})
	single.Observe(42)
	overflow := NewHistogram([]uint64{10})
	for _, v := range []uint64{500, 900} {
		overflow.Observe(v)
	}
	uniform := NewHistogram([]uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	for v := uint64(1); v <= 100; v++ {
		uniform.Observe(v % 10)
	}
	empty := NewHistogram([]uint64{10})

	cases := []struct {
		name string
		h    *Histogram
		want Summary
	}{
		{"multi-bucket", multi, Summary{Count: 5, Mean: 1025, P50: 100, P95: 5000, P99: 5000}},
		{"single sample", single, Summary{Count: 1, Mean: 42, P50: 100, P95: 100, P99: 100}},
		{"overflow only", overflow, Summary{Count: 2, Mean: 700, P50: 900, P95: 900, P99: 900}},
		{"uniform 0..9", uniform, Summary{Count: 100, Mean: 4.5, P50: 4, P95: 9, P99: 9}},
		{"empty", empty, Summary{}},
	}
	for _, tc := range cases {
		got := tc.h.Summary()
		if got != tc.want {
			t.Errorf("%s: Summary() = %+v, want %+v", tc.name, got, tc.want)
		}
		// Consistency with the one-at-a-time Percentile path.
		if got.P50 != tc.h.Percentile(50) || got.P95 != tc.h.Percentile(95) || got.P99 != tc.h.Percentile(99) {
			t.Errorf("%s: Summary disagrees with Percentile: %+v", tc.name, got)
		}
	}
}

func TestPropertySummaryMatchesPercentile(t *testing.T) {
	f := func(vals []uint16) bool {
		h := NewHistogram([]uint64{100, 1000, 10000})
		for _, v := range vals {
			h.Observe(uint64(v))
		}
		s := h.Summary()
		lat := h.Latency()
		return s.Count == uint64(len(vals)) &&
			s.P50 == h.Percentile(50) &&
			s.P95 == h.Percentile(95) &&
			s.P99 == h.Percentile(99) &&
			s.Mean == lat.Mean()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBoundsCopy(t *testing.T) {
	h := NewHistogram([]uint64{10, 100})
	b := h.Bounds()
	b[0] = 99
	if h.Bounds()[0] != 10 {
		t.Fatal("Bounds returned internal slice")
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for i, bounds := range [][]uint64{{}, {5, 5}, {9, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: bad bounds accepted", i)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestUtilization(t *testing.T) {
	var u Utilization
	if u.Value() != 0 {
		t.Fatal("empty utilization nonzero")
	}
	u.AddBusy(30)
	u.AddTotal(100)
	if u.Value() != 0.3 || u.Busy() != 30 {
		t.Fatalf("value = %v busy = %d", u.Value(), u.Busy())
	}
}

func TestGeoMeanAndMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Fatalf("geomean = %v, want 2", g)
	}
	if g := GeoMean([]float64{0, -1}); g != 0 {
		t.Fatalf("geomean of non-positives = %v, want 0", g)
	}
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("mean = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Fatalf("mean of empty = %v", m)
	}
}

func TestPropertyLatencyMeanBounded(t *testing.T) {
	f := func(vals []uint16) bool {
		var l Latency
		for _, v := range vals {
			l.Observe(uint64(v))
		}
		if len(vals) == 0 {
			return l.Mean() == 0
		}
		return float64(l.Min()) <= l.Mean() && l.Mean() <= float64(l.Max())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyHistogramConservation(t *testing.T) {
	f := func(vals []uint16) bool {
		h := NewHistogram([]uint64{100, 1000, 10000})
		var sum uint64
		for _, v := range vals {
			h.Observe(uint64(v))
		}
		for i := 0; i < h.NumBuckets(); i++ {
			sum += h.Bucket(i)
		}
		lat := h.Latency()
		return sum == uint64(len(vals)) && lat.Count() == uint64(len(vals))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
