package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// File format for recorded traces: a compact varint encoding so the 500M
// instruction traces of the paper's methodology stay manageable on disk.
//
//	magic "DTRC" | version u8 | name len u8 | name | record count u64
//	per record: gap uvarint | flags u8 (bit0 = write) | addr-delta zigzag
//
// Addresses are delta-encoded against the previous record's address,
// which compresses both streaming (small positive deltas) and working-set
// (bounded deltas) patterns well.

var fileMagic = [4]byte{'D', 'T', 'R', 'C'}

const fileVersion = 1

// ErrBadTraceFile is returned when a file fails header validation.
var ErrBadTraceFile = errors.New("trace: not a trace file (bad magic or version)")

// WriteFile encodes up to n records from r into w under the given
// benchmark name. It returns the number of records written (fewer than n
// only if r ends first).
func WriteFile(w io.Writer, name string, r Reader, n uint64) (uint64, error) {
	if len(name) > 255 {
		return 0, fmt.Errorf("trace: name %q too long", name)
	}
	// Buffer the records first: the header carries the exact count.
	recs := make([]Record, 0, n)
	for uint64(len(recs)) < n {
		rec, ok := r.Next()
		if !ok {
			break
		}
		recs = append(recs, rec)
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return 0, err
	}
	bw.WriteByte(fileVersion)
	bw.WriteByte(byte(len(name)))
	bw.WriteString(name)
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(len(recs)))
	bw.Write(cnt[:])

	var buf [binary.MaxVarintLen64]byte
	prev := uint64(0)
	for _, rec := range recs {
		k := binary.PutUvarint(buf[:], uint64(rec.Gap))
		bw.Write(buf[:k])
		flags := byte(0)
		if rec.Write {
			flags |= 1
		}
		bw.WriteByte(flags)
		delta := int64(rec.Addr) - int64(prev)
		k = binary.PutVarint(buf[:], delta)
		bw.Write(buf[:k])
		prev = rec.Addr
	}
	return uint64(len(recs)), bw.Flush()
}

// FileReader replays a recorded trace; it implements Reader.
type FileReader struct {
	br    *bufio.Reader
	name  string
	total uint64
	read  uint64
	prev  uint64
	err   error
}

// OpenFile validates the header and returns a reader positioned at the
// first record.
func OpenFile(r io.Reader) (*FileReader, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, ErrBadTraceFile
	}
	if magic != fileMagic {
		return nil, ErrBadTraceFile
	}
	ver, err := br.ReadByte()
	if err != nil || ver != fileVersion {
		return nil, ErrBadTraceFile
	}
	nameLen, err := br.ReadByte()
	if err != nil {
		return nil, ErrBadTraceFile
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, ErrBadTraceFile
	}
	var cnt [8]byte
	if _, err := io.ReadFull(br, cnt[:]); err != nil {
		return nil, ErrBadTraceFile
	}
	return &FileReader{
		br:    br,
		name:  string(name),
		total: binary.LittleEndian.Uint64(cnt[:]),
	}, nil
}

// Name returns the benchmark name recorded in the header.
func (f *FileReader) Name() string { return f.name }

// Total returns the record count recorded in the header.
func (f *FileReader) Total() uint64 { return f.total }

// Err returns the first decoding error encountered, if any.
func (f *FileReader) Err() error { return f.err }

// Next implements Reader.
func (f *FileReader) Next() (Record, bool) {
	if f.err != nil || f.read >= f.total {
		return Record{}, false
	}
	gap, err := binary.ReadUvarint(f.br)
	if err != nil {
		f.err = fmt.Errorf("trace: truncated record %d: %w", f.read, err)
		return Record{}, false
	}
	flags, err := f.br.ReadByte()
	if err != nil {
		f.err = fmt.Errorf("trace: truncated record %d: %w", f.read, err)
		return Record{}, false
	}
	delta, err := binary.ReadVarint(f.br)
	if err != nil {
		f.err = fmt.Errorf("trace: truncated record %d: %w", f.read, err)
		return Record{}, false
	}
	f.prev = uint64(int64(f.prev) + delta)
	f.read++
	return Record{Gap: uint32(gap), Write: flags&1 == 1, Addr: f.prev}, true
}
