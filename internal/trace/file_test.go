package trace

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestFileRoundTrip(t *testing.T) {
	spec, _ := ByName("face")
	var buf bytes.Buffer
	const n = 5000
	wrote, err := WriteFile(&buf, "face", NewGenerator(spec, 11), n)
	if err != nil {
		t.Fatal(err)
	}
	if wrote != n {
		t.Fatalf("wrote %d records, want %d", wrote, n)
	}

	f, err := OpenFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "face" || f.Total() != n {
		t.Fatalf("header: name=%q total=%d", f.Name(), f.Total())
	}
	ref := NewGenerator(spec, 11)
	for i := 0; i < n; i++ {
		want, _ := ref.Next()
		got, ok := f.Next()
		if !ok {
			t.Fatalf("record %d: reader ended early: %v", i, f.Err())
		}
		if got != want {
			t.Fatalf("record %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, ok := f.Next(); ok {
		t.Fatal("reader yielded past the recorded count")
	}
	if f.Err() != nil {
		t.Fatalf("clean read left error: %v", f.Err())
	}
}

func TestFileRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("shrt"),
		[]byte("NOPE12345678901234567890"),
		append([]byte("DTRC"), 99 /* bad version */, 0, 0, 0, 0, 0, 0, 0, 0, 0),
	}
	for i, b := range cases {
		if _, err := OpenFile(bytes.NewReader(b)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestFileTruncationSurfaces(t *testing.T) {
	spec, _ := ByName("libq")
	var buf bytes.Buffer
	if _, err := WriteFile(&buf, "libq", NewGenerator(spec, 3), 100); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-5]
	f, err := OpenFile(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, ok := f.Next(); !ok {
			break
		}
		n++
	}
	if n >= 100 {
		t.Fatal("truncated file yielded all records")
	}
	if f.Err() == nil {
		t.Fatal("truncation not reported via Err")
	}
}

func TestFileShortTraceFromSlice(t *testing.T) {
	recs := []Record{
		{Gap: 0, Write: false, Addr: 64},
		{Gap: 1000000, Write: true, Addr: 0}, // negative delta
		{Gap: 3, Write: false, Addr: 1 << 40},
	}
	var buf bytes.Buffer
	wrote, err := WriteFile(&buf, "mini", NewSliceReader(recs), 10)
	if err != nil {
		t.Fatal(err)
	}
	if wrote != 3 {
		t.Fatalf("wrote %d, want 3 (source exhausted)", wrote)
	}
	f, err := OpenFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range recs {
		got, ok := f.Next()
		if !ok || got != want {
			t.Fatalf("record %d: got %+v ok=%v, want %+v", i, got, ok, want)
		}
	}
}

func TestPropertyFileRoundTrip(t *testing.T) {
	f := func(gaps []uint32, addrs []uint32, writes []bool) bool {
		n := len(gaps)
		if len(addrs) < n {
			n = len(addrs)
		}
		if len(writes) < n {
			n = len(writes)
		}
		recs := make([]Record, n)
		for i := 0; i < n; i++ {
			recs[i] = Record{Gap: gaps[i], Write: writes[i], Addr: uint64(addrs[i]) * 64}
		}
		var buf bytes.Buffer
		if _, err := WriteFile(&buf, "p", NewSliceReader(recs), uint64(n)); err != nil {
			return false
		}
		fr, err := OpenFile(&buf)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			got, ok := fr.Next()
			if !ok || got != recs[i] {
				return false
			}
		}
		_, ok := fr.Next()
		return !ok && fr.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// FuzzOpenFile ensures arbitrary bytes never panic the trace file reader.
func FuzzOpenFile(f *testing.F) {
	spec, _ := ByName("black")
	var buf bytes.Buffer
	WriteFile(&buf, "black", NewGenerator(spec, 1), 50)
	f.Add(buf.Bytes())
	f.Add([]byte("DTRC"))
	f.Add([]byte(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := OpenFile(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1000; i++ {
			if _, ok := fr.Next(); !ok {
				break
			}
		}
	})
}
