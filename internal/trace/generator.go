package trace

import (
	"doram/internal/xrand"
)

// LineBytes is the cache-line granularity of all generated addresses.
const LineBytes = 64

// Generator synthesizes an infinite, deterministic memory trace matching a
// Spec. Addresses are line-aligned byte offsets within the application's
// own address space starting at 0; the system layer relocates them into a
// per-application segment.
type Generator struct {
	spec Spec
	rng  *xrand.Rand

	gapMean float64
	wsLines uint64

	streams []streamState
	burst   int // remaining accesses in the current burst
}

type streamState struct {
	cur   uint64 // current line index
	left  int    // lines until the stream jumps
	write bool   // streams alternate read- and write-dominated passes
}

// NewGenerator builds a generator for spec; identical (spec, seed) pairs
// produce identical traces. It panics on an invalid spec, which is a
// configuration programming error.
func NewGenerator(spec Spec, seed uint64) *Generator {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	g := &Generator{
		spec:    spec,
		rng:     xrand.New(seed ^ xrand.HashString(spec.Name)),
		gapMean: 1000/spec.MPKI - 1,
		wsLines: uint64(spec.WorkingSetMB) << 20 / LineBytes,
	}
	if g.gapMean < 0 {
		g.gapMean = 0
	}
	g.streams = make([]streamState, spec.Streams)
	for i := range g.streams {
		g.resetStream(i)
	}
	return g
}

// Spec returns the generator's spec.
func (g *Generator) Spec() Spec { return g.spec }

func (g *Generator) resetStream(i int) {
	g.streams[i] = streamState{
		cur:   g.rng.Uint64n(g.wsLines),
		left:  256 + g.rng.Intn(1024),
		write: g.rng.Bool(1 - g.spec.ReadFrac),
	}
}

// Next returns the following record; the stream never ends.
func (g *Generator) Next() (Record, bool) {
	var rec Record
	rec.Gap = g.nextGap()
	if g.rng.Bool(g.spec.StreamFrac) {
		i := g.rng.Intn(len(g.streams))
		s := &g.streams[i]
		rec.Addr = (s.cur % g.wsLines) * LineBytes
		rec.Write = s.write
		s.cur++
		s.left--
		if s.left <= 0 {
			g.resetStream(i)
		}
	} else {
		rec.Addr = g.rng.Uint64n(g.wsLines) * LineBytes
		rec.Write = g.rng.Bool(1 - g.spec.ReadFrac)
	}
	return rec, true
}

// nextGap draws the non-memory instruction gap before the next access,
// mixing bursty short gaps with longer exponential gaps so that the
// long-run mean matches 1000/MPKI instructions per access.
func (g *Generator) nextGap() uint32 {
	if g.burst > 0 {
		g.burst--
		return uint32(g.rng.Intn(4))
	}
	if g.rng.Bool(g.spec.BurstProb) {
		g.burst = 2 + g.rng.Intn(6)
	}
	// Compensate the burst accesses' near-zero gaps so the overall mean
	// stays at gapMean. A burst averages 4.5 accesses of mean gap 1.5, and
	// starts after a non-burst access with probability BurstProb, so the
	// idle gap absorbs the burst's share of the instruction budget.
	const burstLen, burstGap = 4.5, 1.5
	p := g.spec.BurstProb
	idleMean := g.gapMean*(1+burstLen*p) - burstLen*burstGap*p
	if idleMean < 0 {
		idleMean = 0
	}
	gap := g.rng.Exp(idleMean)
	const maxGap = 1 << 20
	if gap > maxGap {
		gap = maxGap
	}
	return uint32(gap)
}

// Limited wraps a Reader and ends it after n records; it adapts infinite
// generators to fixed-length simulation runs.
type Limited struct {
	r    Reader
	left uint64
}

// Limit returns a Reader that yields at most n records from r.
func Limit(r Reader, n uint64) *Limited { return &Limited{r: r, left: n} }

// Next implements Reader.
func (l *Limited) Next() (Record, bool) {
	if l.left == 0 {
		return Record{}, false
	}
	l.left--
	return l.r.Next()
}

// Remaining returns how many records may still be read.
func (l *Limited) Remaining() uint64 { return l.left }

// SliceReader replays a fixed record slice; used by tests and file-backed
// traces.
type SliceReader struct {
	recs []Record
	pos  int
}

// NewSliceReader wraps recs in a Reader.
func NewSliceReader(recs []Record) *SliceReader { return &SliceReader{recs: recs} }

// Next implements Reader.
func (s *SliceReader) Next() (Record, bool) {
	if s.pos >= len(s.recs) {
		return Record{}, false
	}
	r := s.recs[s.pos]
	s.pos++
	return r, true
}

// Stats summarizes a finite prefix of a trace; used for calibration tests
// and the tracegen CLI.
type Stats struct {
	Records    uint64
	Reads      uint64
	Writes     uint64
	Instrs     uint64 // total instructions including memory ops
	UniqueLine uint64
}

// MPKI returns the observed memory accesses per kilo-instruction.
func (s Stats) MPKI() float64 {
	if s.Instrs == 0 {
		return 0
	}
	return float64(s.Records) / float64(s.Instrs) * 1000
}

// ReadFrac returns the observed read fraction.
func (s Stats) ReadFrac() float64 {
	if s.Records == 0 {
		return 0
	}
	return float64(s.Reads) / float64(s.Records)
}

// Measure consumes up to n records from r and summarizes them.
func Measure(r Reader, n uint64) Stats {
	var st Stats
	seen := make(map[uint64]struct{})
	for i := uint64(0); i < n; i++ {
		rec, ok := r.Next()
		if !ok {
			break
		}
		st.Records++
		st.Instrs += uint64(rec.Gap) + 1
		if rec.Write {
			st.Writes++
		} else {
			st.Reads++
		}
		seen[rec.Addr/LineBytes] = struct{}{}
	}
	st.UniqueLine = uint64(len(seen))
	return st
}
