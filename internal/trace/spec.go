// Package trace provides the memory-access traces that drive the cores.
//
// The paper uses 15 memory-intensive benchmarks from the 2012 Memory
// Scheduling Championship (PARSEC, commercial, SPEC and BioBench traces of
// 500M representative instructions). Those traces are not redistributable,
// so this package synthesizes statistically calibrated equivalents: the
// MPKI of each benchmark is taken verbatim from Table III, and the
// remaining behavioural knobs (read fraction, stream locality, working-set
// size, burstiness) are set per benchmark to span the same qualitative
// range — bandwidth-bound streamers versus latency-bound random-access
// programs — that the paper's Figures 4, 9, 11 and 12 depend on.
// Generation is fully deterministic given a seed.
package trace

import "fmt"

// Record is one entry of a memory trace: Gap non-memory instructions
// execute, then one memory access to Addr (a byte address, line aligned).
type Record struct {
	Gap   uint32
	Write bool
	Addr  uint64
}

// Reader yields a stream of trace records. Implementations must be
// deterministic for a given construction.
type Reader interface {
	// Next returns the following record. The second result is false when
	// the trace is exhausted (generators backed by synthesis never are).
	Next() (Record, bool)
}

// Spec describes the statistical shape of one benchmark's memory behaviour.
type Spec struct {
	Name  string
	Suite string

	// MPKI is memory accesses per kilo-instruction at the main-memory
	// level (post-LLC), from Table III of the paper.
	MPKI float64

	// ReadFrac is the fraction of accesses that are reads.
	ReadFrac float64

	// StreamFrac is the fraction of accesses served by sequential streams
	// (high row-buffer locality, bandwidth-bound behaviour); the rest are
	// uniform random within the working set (latency-bound behaviour).
	StreamFrac float64

	// Streams is the number of concurrent sequential streams.
	Streams int

	// WorkingSetMB bounds the random-access footprint.
	WorkingSetMB int

	// BurstProb is the probability that an access follows its predecessor
	// after a minimal gap, producing bursty arrivals.
	BurstProb float64
}

// Validate reports whether the spec can drive a generator.
func (s Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("trace: spec needs a name")
	case s.MPKI <= 0:
		return fmt.Errorf("trace %s: MPKI must be positive", s.Name)
	case s.ReadFrac < 0 || s.ReadFrac > 1:
		return fmt.Errorf("trace %s: ReadFrac out of [0,1]", s.Name)
	case s.StreamFrac < 0 || s.StreamFrac > 1:
		return fmt.Errorf("trace %s: StreamFrac out of [0,1]", s.Name)
	case s.Streams <= 0:
		return fmt.Errorf("trace %s: Streams must be positive", s.Name)
	case s.WorkingSetMB <= 0:
		return fmt.Errorf("trace %s: WorkingSetMB must be positive", s.Name)
	case s.BurstProb < 0 || s.BurstProb >= 1:
		return fmt.Errorf("trace %s: BurstProb out of [0,1)", s.Name)
	}
	return nil
}

// MSC returns the 15 benchmark specs of Table III. MPKI values are the
// paper's; locality knobs encode each program's published character
// (streamcluster/libquantum/leslie3d are streaming and bandwidth-bound;
// mummer/swaptions/blackscholes are pointer-chasing or random;
// the commercial traces are transaction-like mixes).
func MSC() []Spec {
	return []Spec{
		{Name: "black", Suite: "PARSEC", MPKI: 4.2, ReadFrac: 0.70, StreamFrac: 0.25, Streams: 2, WorkingSetMB: 64, BurstProb: 0.30},
		{Name: "face", Suite: "PARSEC", MPKI: 26.8, ReadFrac: 0.65, StreamFrac: 0.55, Streams: 4, WorkingSetMB: 96, BurstProb: 0.45},
		{Name: "ferret", Suite: "PARSEC", MPKI: 8.0, ReadFrac: 0.72, StreamFrac: 0.40, Streams: 3, WorkingSetMB: 64, BurstProb: 0.35},
		{Name: "fluid", Suite: "PARSEC", MPKI: 17.5, ReadFrac: 0.68, StreamFrac: 0.60, Streams: 4, WorkingSetMB: 128, BurstProb: 0.40},
		{Name: "stream", Suite: "PARSEC", MPKI: 12.9, ReadFrac: 0.60, StreamFrac: 0.90, Streams: 6, WorkingSetMB: 256, BurstProb: 0.50},
		{Name: "swapt", Suite: "PARSEC", MPKI: 10.9, ReadFrac: 0.70, StreamFrac: 0.30, Streams: 2, WorkingSetMB: 64, BurstProb: 0.30},
		{Name: "comm1", Suite: "COMM", MPKI: 7.3, ReadFrac: 0.62, StreamFrac: 0.35, Streams: 3, WorkingSetMB: 128, BurstProb: 0.55},
		{Name: "comm2", Suite: "COMM", MPKI: 12.6, ReadFrac: 0.60, StreamFrac: 0.50, Streams: 3, WorkingSetMB: 128, BurstProb: 0.55},
		{Name: "comm3", Suite: "COMM", MPKI: 4.2, ReadFrac: 0.64, StreamFrac: 0.20, Streams: 2, WorkingSetMB: 96, BurstProb: 0.50},
		{Name: "comm4", Suite: "COMM", MPKI: 3.7, ReadFrac: 0.62, StreamFrac: 0.30, Streams: 2, WorkingSetMB: 96, BurstProb: 0.45},
		{Name: "comm5", Suite: "COMM", MPKI: 4.5, ReadFrac: 0.63, StreamFrac: 0.35, Streams: 2, WorkingSetMB: 96, BurstProb: 0.45},
		{Name: "leslie", Suite: "SPEC", MPKI: 23.1, ReadFrac: 0.65, StreamFrac: 0.85, Streams: 6, WorkingSetMB: 256, BurstProb: 0.45},
		{Name: "libq", Suite: "SPEC", MPKI: 12.0, ReadFrac: 0.75, StreamFrac: 0.95, Streams: 2, WorkingSetMB: 64, BurstProb: 0.40},
		{Name: "mummer", Suite: "BIOBENCH", MPKI: 24.0, ReadFrac: 0.80, StreamFrac: 0.15, Streams: 2, WorkingSetMB: 256, BurstProb: 0.35},
		{Name: "tigr", Suite: "BIOBENCH", MPKI: 6.7, ReadFrac: 0.78, StreamFrac: 0.80, Streams: 4, WorkingSetMB: 128, BurstProb: 0.40},
	}
}

// ByName returns the MSC spec with the given name.
func ByName(name string) (Spec, bool) {
	for _, s := range MSC() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Names returns the benchmark names in Table III order.
func Names() []string {
	specs := MSC()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}
