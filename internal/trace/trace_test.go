package trace

import (
	"testing"
	"testing/quick"
)

func TestMSCMatchesTableIII(t *testing.T) {
	want := map[string]float64{
		"black": 4.2, "face": 26.8, "ferret": 8.0, "fluid": 17.5,
		"stream": 12.9, "swapt": 10.9,
		"comm1": 7.3, "comm2": 12.6, "comm3": 4.2, "comm4": 3.7, "comm5": 4.5,
		"leslie": 23.1, "libq": 12.0,
		"mummer": 24.0, "tigr": 6.7,
	}
	specs := MSC()
	if len(specs) != 15 {
		t.Fatalf("MSC has %d benchmarks, want 15", len(specs))
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: invalid spec: %v", s.Name, err)
		}
		if w, ok := want[s.Name]; !ok || s.MPKI != w {
			t.Errorf("%s: MPKI = %v, want %v (Table III)", s.Name, s.MPKI, w)
		}
	}
}

func TestByName(t *testing.T) {
	s, ok := ByName("libq")
	if !ok || s.Suite != "SPEC" {
		t.Fatalf("ByName(libq) = %+v, %v", s, ok)
	}
	if _, ok := ByName("nosuch"); ok {
		t.Fatal("ByName accepted unknown benchmark")
	}
	if len(Names()) != 15 {
		t.Fatal("Names() length mismatch")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	spec, _ := ByName("face")
	a := NewGenerator(spec, 42)
	b := NewGenerator(spec, 42)
	for i := 0; i < 10000; i++ {
		ra, _ := a.Next()
		rb, _ := b.Next()
		if ra != rb {
			t.Fatalf("record %d diverged: %+v vs %+v", i, ra, rb)
		}
	}
	c := NewGenerator(spec, 43)
	same := 0
	for i := 0; i < 1000; i++ {
		ra, _ := a.Next()
		rc, _ := c.Next()
		if ra == rc {
			same++
		}
	}
	if same > 100 {
		t.Fatalf("different seeds produced %d/1000 identical records", same)
	}
}

func TestGeneratorMPKICalibration(t *testing.T) {
	for _, spec := range MSC() {
		g := NewGenerator(spec, 7)
		st := Measure(g, 200000)
		got := st.MPKI()
		if got < spec.MPKI*0.9 || got > spec.MPKI*1.1 {
			t.Errorf("%s: measured MPKI %.2f, want %.1f +/- 10%%", spec.Name, got, spec.MPKI)
		}
		rf := st.ReadFrac()
		if rf < spec.ReadFrac-0.08 || rf > spec.ReadFrac+0.08 {
			t.Errorf("%s: measured read fraction %.2f, want %.2f +/- 0.08", spec.Name, rf, spec.ReadFrac)
		}
	}
}

func TestGeneratorAddressesLineAlignedAndBounded(t *testing.T) {
	spec, _ := ByName("mummer")
	g := NewGenerator(spec, 3)
	limit := uint64(spec.WorkingSetMB) << 20
	for i := 0; i < 50000; i++ {
		r, _ := g.Next()
		if r.Addr%LineBytes != 0 {
			t.Fatalf("record %d: address %#x not line aligned", i, r.Addr)
		}
		if r.Addr >= limit {
			t.Fatalf("record %d: address %#x outside working set %#x", i, r.Addr, limit)
		}
	}
}

func TestStreamersShowMoreSequentiality(t *testing.T) {
	seq := func(name string) float64 {
		spec, ok := ByName(name)
		if !ok {
			t.Fatalf("unknown benchmark %s", name)
		}
		g := NewGenerator(spec, 11)
		var sequential, total int
		prev := uint64(0)
		for i := 0; i < 50000; i++ {
			r, _ := g.Next()
			if i > 0 && (r.Addr == prev+LineBytes || r.Addr == prev) {
				sequential++
			}
			prev = r.Addr
			total++
		}
		return float64(sequential) / float64(total)
	}
	if s, m := seq("libq"), seq("mummer"); s <= m {
		t.Errorf("libq sequentiality %.3f should exceed mummer's %.3f", s, m)
	}
	if s, b := seq("stream"), seq("black"); s <= b {
		t.Errorf("stream sequentiality %.3f should exceed black's %.3f", s, b)
	}
}

func TestLimit(t *testing.T) {
	spec, _ := ByName("black")
	l := Limit(NewGenerator(spec, 1), 5)
	for i := 0; i < 5; i++ {
		if _, ok := l.Next(); !ok {
			t.Fatalf("Limit ended early at %d", i)
		}
	}
	if _, ok := l.Next(); ok {
		t.Fatal("Limit yielded more than n records")
	}
	if l.Remaining() != 0 {
		t.Fatal("Remaining() nonzero after exhaustion")
	}
}

func TestSliceReader(t *testing.T) {
	recs := []Record{{Gap: 1, Addr: 64}, {Gap: 2, Write: true, Addr: 128}}
	r := NewSliceReader(recs)
	for i := range recs {
		got, ok := r.Next()
		if !ok || got != recs[i] {
			t.Fatalf("record %d: got %+v %v", i, got, ok)
		}
	}
	if _, ok := r.Next(); ok {
		t.Fatal("SliceReader yielded past end")
	}
}

func TestSpecValidateRejectsBad(t *testing.T) {
	good, _ := ByName("black")
	muts := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.MPKI = 0 },
		func(s *Spec) { s.ReadFrac = 1.2 },
		func(s *Spec) { s.StreamFrac = -0.1 },
		func(s *Spec) { s.Streams = 0 },
		func(s *Spec) { s.WorkingSetMB = 0 },
		func(s *Spec) { s.BurstProb = 1.0 },
	}
	for i, mut := range muts {
		s := good
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d: invalid spec accepted", i)
		}
	}
}

// TestPropertyMeasureConsistency checks Measure's accounting invariants
// over random generator prefixes.
func TestPropertyMeasureConsistency(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := uint64(nRaw)%5000 + 1
		spec, _ := ByName("comm2")
		st := Measure(NewGenerator(spec, seed), n)
		return st.Records == n &&
			st.Reads+st.Writes == st.Records &&
			st.Instrs >= st.Records &&
			st.UniqueLine <= st.Records && st.UniqueLine >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
