// Package xrand provides a tiny deterministic PRNG (SplitMix64) used across
// the simulator. Simulations must be exactly reproducible from a seed, and
// several generators run interleaved, so each component owns its own stream
// rather than sharing math/rand global state.
package xrand

import "math"

// Rand is a SplitMix64 pseudo-random generator. The zero value is a valid
// generator seeded with 0.
type Rand struct {
	s uint64
}

// New returns a generator with the given seed.
func New(seed uint64) *Rand { return &Rand{s: seed} }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform float in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed float with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Fork derives an independent generator from this one, keyed by id, so
// subsystems can receive decorrelated streams from one master seed.
func (r *Rand) Fork(id uint64) *Rand {
	return New(r.Uint64() ^ (id * 0xd1342543de82ef95))
}

// HashString folds a string into a 64-bit seed (FNV-1a).
func HashString(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
