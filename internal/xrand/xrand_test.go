package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at %d", i)
		}
	}
	c := New(8)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds matched %d/100 times", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(1)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := r.Uint64n(3); v >= 3 {
			t.Fatalf("Uint64n out of range: %d", v)
		}
	}
}

func TestIntnPanicsOnBadN(t *testing.T) {
	for i, f := range []func(){
		func() { New(1).Intn(0) },
		func() { New(1).Intn(-1) },
		func() { New(1).Uint64n(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid n accepted", i)
				}
			}()
			f()
		}()
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := New(5)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(100)
	}
	if mean := sum / n; mean < 97 || mean > 103 {
		t.Fatalf("Exp mean = %v, want ~100", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(9)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) frequency = %v", frac)
	}
}

func TestForkDecorrelates(t *testing.T) {
	master := New(11)
	a := master.Fork(1)
	b := master.Fork(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked streams matched %d/100 times", same)
	}
}

func TestHashString(t *testing.T) {
	if HashString("abc") == HashString("abd") {
		t.Fatal("distinct strings hashed equal")
	}
	if HashString("abc") != HashString("abc") {
		t.Fatal("hash not deterministic")
	}
}

func TestPropertyUniformBits(t *testing.T) {
	// Every bit position should be set roughly half the time.
	f := func(seed uint64) bool {
		r := New(seed)
		counts := [64]int{}
		const n = 2000
		for i := 0; i < n; i++ {
			v := r.Uint64()
			for b := 0; b < 64; b++ {
				if v&(1<<uint(b)) != 0 {
					counts[b]++
				}
			}
		}
		for _, c := range counts {
			if c < n/2-200 || c > n/2+200 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
