package doram

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// metricsRun is the fixed configuration every metrics test shares; small
// enough to be fast, d-oram so every subsystem (links, BOB, sub-channels,
// delegator) contributes instruments.
func metricsRun(t *testing.T) *SimResult {
	t.Helper()
	cfg := DefaultSimConfig(SchemeDORAM, "face")
	cfg.TraceLen = 2000
	cfg.Metrics = true
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil || res.Timeline == nil {
		t.Fatal("metrics enabled but no dump/timeline returned")
	}
	return res
}

// TestMetricsGolden pins the exact metrics-json output of a fixed run —
// the same bytes `doramsim -metrics-json` would write. Regenerate with
// `go test -run TestMetricsGolden -update .` after intentional changes.
func TestMetricsGolden(t *testing.T) {
	res := metricsRun(t)
	var buf bytes.Buffer
	if err := res.Metrics.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "metrics_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("metrics dump diverged from %s (run with -update if intentional); got %d bytes, want %d",
			golden, buf.Len(), len(want))
	}
}

// TestMetricsJSONRoundTrip checks the exported dump survives
// encoding/json without loss.
func TestMetricsJSONRoundTrip(t *testing.T) {
	res := metricsRun(t)
	var buf bytes.Buffer
	if err := res.Metrics.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back MetricsDump
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if len(back.Counters) != len(res.Metrics.Counters) {
		t.Fatalf("counters: got %d, want %d", len(back.Counters), len(res.Metrics.Counters))
	}
	for name, v := range res.Metrics.Counters {
		if back.Counters[name] != v {
			t.Fatalf("counter %s: got %d, want %d", name, back.Counters[name], v)
		}
	}
	if back.Timeline == nil || len(back.Timeline.Epochs) != len(res.Timeline.Epochs) ||
		len(back.Timeline.Series) != len(res.Timeline.Series) {
		t.Fatal("timeline shape lost in round trip")
	}
}

// TestTimelineInvariants checks structural properties every run's timeline
// must satisfy: strictly increasing epoch cycles, utilizations in [0,1],
// and stash occupancy within the delegator's configured bound.
func TestTimelineInvariants(t *testing.T) {
	res := metricsRun(t)
	tl := res.Timeline

	if tl.EpochCycles != DefaultMetricsEpochCycles {
		t.Fatalf("epoch = %d, want default %d", tl.EpochCycles, DefaultMetricsEpochCycles)
	}
	if len(tl.Epochs) == 0 {
		t.Fatal("no epochs sampled")
	}
	var last uint64
	for i, e := range tl.Epochs {
		if i > 0 && e.Cycle <= last {
			t.Fatalf("epoch cycles not strictly increasing: %d after %d", e.Cycle, last)
		}
		last = e.Cycle
		if len(e.Values) != len(tl.Series) {
			t.Fatalf("epoch %d has %d values for %d series", i, len(e.Values), len(tl.Series))
		}
	}

	for i, name := range tl.Series {
		isUtil := strings.HasSuffix(name, "util")
		for _, e := range tl.Epochs {
			v := e.Value(i)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("series %s: non-finite sample %v", name, v)
			}
			if isUtil && (v < 0 || v > 1) {
				t.Fatalf("series %s: utilization %v out of [0,1]", name, v)
			}
		}
	}

	// Stash occupancy never exceeds the delegator's structural capacity.
	checked := false
	for i, name := range tl.Series {
		if !strings.HasSuffix(name, ".stash_blocks") {
			continue
		}
		capName := strings.TrimSuffix(name, "stash_blocks") + "stash_capacity"
		capacity, ok := res.Metrics.Counters[capName]
		if !ok {
			t.Fatalf("series %s has no %s counter", name, capName)
		}
		checked = true
		for _, e := range tl.Epochs {
			if v := e.Value(i); v < 0 || v > float64(capacity) {
				t.Fatalf("series %s: occupancy %v outside [0,%d]", name, v, capacity)
			}
		}
	}
	if !checked {
		t.Fatal("no stash_blocks series found on a d-oram run")
	}
}

// TestTimelineIntegralMatchesAggregates ties the sampled series back to
// the scalar results: integrating each channel's per-epoch bus utilization
// against its cumulative memory-cycle series must recover the channel's
// total data-bus busy cycles (within 1%, per the design; exactly, by
// construction of the interval gauges).
func TestTimelineIntegralMatchesAggregates(t *testing.T) {
	res := metricsRun(t)
	tl := res.Timeline
	for ch, wantBusy := range res.ChannelDataBusBusy {
		prefix := "chan" + string(rune('0'+ch)) + "."
		ui := tl.SeriesIndex(prefix + "bus_util")
		wi := tl.SeriesIndex(prefix + "mem_cycles")
		if ui < 0 || wi < 0 {
			t.Fatalf("channel %d missing bus_util/mem_cycles series", ch)
		}
		got := tl.Integrate(ui, wi)
		if wantBusy == 0 {
			if got != 0 {
				t.Fatalf("channel %d: integral %v on an idle channel", ch, got)
			}
			continue
		}
		if rel := math.Abs(got-float64(wantBusy)) / float64(wantBusy); rel > 0.01 {
			t.Fatalf("channel %d: integral %v vs busy cycles %d (%.2f%% off)",
				ch, got, wantBusy, rel*100)
		}
		// The registry's own cumulative counter agrees with the Results
		// aggregate the integral was checked against.
		if c := res.Metrics.Counters[prefix+"bus_busy_cycles"]; c != wantBusy {
			t.Fatalf("channel %d: counter %d vs results %d", ch, c, wantBusy)
		}
	}
}

// TestMetricsDisabledByDefault pins the default-off contract.
func TestMetricsDisabledByDefault(t *testing.T) {
	cfg := DefaultSimConfig(SchemeDORAM, "face")
	cfg.TraceLen = 500
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics != nil || res.Timeline != nil {
		t.Fatal("metrics returned without being enabled")
	}
}
