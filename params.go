package doram

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"doram/internal/oram/backend"
)

// Params is the canonical, JSON-serializable form of a simulation
// configuration — the job-spec payload of the doramd service and the wire
// contract of its HTTP API. It mirrors SimConfig with two differences:
// fields whose zero value is meaningful (NumNS, HasSApp, C) are pointers so
// that "omitted" and "zero" stay distinguishable, and server-side file
// paths (SimConfig.TraceDir) are deliberately unrepresentable.
//
// Two Params describe the same simulation exactly when their Canonical
// forms are equal, and Hash is defined over that canonical form — so a
// spec's hash is invariant under JSON field reordering and under spelling
// out defaults the canonicalization would fill anyway. Equal hashes mean
// equal results: runs are deterministic in the spec and seed (the
// differential suite enforces bit-identical replay), which is what makes
// the doramd result cache sound.
type Params struct {
	Scheme    Scheme `json:"scheme"`
	Benchmark string `json:"benchmark"`

	// NumNS is the number of NS-App copies; omitted means the paper's 7.
	NumNS *int `json:"num_ns,omitempty"`
	// HasSApp runs an S-App; omitted means true for every scheme except
	// non-secure.
	HasSApp *bool `json:"has_sapp,omitempty"`
	// NumS runs multiple S-App copies (0 with HasSApp means 1).
	NumS int `json:"num_s,omitempty"`
	// SplitK is D-ORAM's tree-split depth k (0-3).
	SplitK int `json:"k,omitempty"`
	// C is D-ORAM's secure-channel sharing limit; omitted means AllNS.
	C *int `json:"c,omitempty"`
	// NSChannels restricts NS-Apps to a channel subset; empty means all.
	NSChannels []int `json:"ns_channels,omitempty"`

	// TraceLen is the memory accesses each core replays; omitted means
	// the default 20000.
	TraceLen uint64 `json:"trace_len,omitempty"`
	// Seed drives all randomness; omitted means 1.
	Seed uint64 `json:"seed,omitempty"`
	// LatencyWarmup discards each latency stream's first N observations.
	LatencyWarmup uint64 `json:"latency_warmup,omitempty"`

	// Pace is the timing-protection interval t; omitted means 50.
	Pace uint64 `json:"pace,omitempty"`
	// CoopThreshold is the ORAM bandwidth-preallocation share; omitted
	// means 0.5.
	CoopThreshold float64 `json:"coop_threshold,omitempty"`
	// SubtreeLevels overrides the subtree layout depth; omitted means 7.
	SubtreeLevels int `json:"subtree_levels,omitempty"`
	// LinkLatencyNs overrides the BOB link latency; omitted means 15 ns.
	LinkLatencyNs float64 `json:"link_latency_ns,omitempty"`
	// MaxCycles bounds the run; omitted means the 2-billion default.
	MaxCycles uint64 `json:"max_cycles,omitempty"`

	ForkPath      bool `json:"fork_path,omitempty"`
	OverlapPhases bool `json:"overlap_phases,omitempty"`
	DDR4          bool `json:"ddr4,omitempty"`
	NoFastForward bool `json:"no_fast_forward,omitempty"`

	// Eviction and Encryptor select the ORAM backend by registry name
	// (internal/oram/backend). Omitted or spelled-out defaults
	// ("level-by-level", "ctr-hmac") canonicalize to the empty string, so
	// pre-existing spec hashes — and with them every simsvc/cluster cache
	// key — are unchanged by the knobs' existence.
	Eviction  string `json:"eviction,omitempty"`
	Encryptor string `json:"encryptor,omitempty"`

	LinkCorruptProb float64 `json:"link_corrupt_prob,omitempty"`
	LinkLossProb    float64 `json:"link_loss_prob,omitempty"`

	// Metrics enables the observability registry + timeline; the result
	// then carries the metric dump. MetricsEpochCycles > 0 implies it.
	Metrics            bool   `json:"metrics,omitempty"`
	MetricsEpochCycles uint64 `json:"metrics_epoch_cycles,omitempty"`

	// Trace enables per-access event tracing; the result then carries the
	// latency-attribution report (span events themselves stay server-side
	// — they are excluded from result JSON). TraceSample > 1, TraceOramOnly
	// and TraceTopN > 0 imply it.
	Trace         bool   `json:"trace,omitempty"`
	TraceSample   uint64 `json:"trace_sample,omitempty"`
	TraceOramOnly bool   `json:"trace_oram_only,omitempty"`
	TraceTopN     int    `json:"trace_top,omitempty"`
}

// Default spec values, shared with DefaultSimConfig and core.DefaultConfig.
const (
	defaultNumNS         = 7
	defaultTraceLen      = 20000
	defaultSeed          = 1
	defaultPace          = 50
	defaultCoopThreshold = 0.5
)

// Canonical returns the spec with every omitted field replaced by its
// default and every implied flag made explicit, so that equivalent specs
// compare (and hash) equal. It does not validate; see Validate.
func (p Params) Canonical() Params {
	c := p
	if c.NumNS == nil {
		n := defaultNumNS
		c.NumNS = &n
	}
	if c.HasSApp == nil {
		h := c.Scheme != SchemeNonSecure
		c.HasSApp = &h
	}
	if c.C == nil {
		all := AllNS
		c.C = &all
	}
	if len(c.NSChannels) == 0 {
		c.NSChannels = nil
	}
	if c.TraceLen == 0 {
		c.TraceLen = defaultTraceLen
	}
	if c.Seed == 0 {
		c.Seed = defaultSeed
	}
	if c.Pace == 0 {
		c.Pace = defaultPace
	}
	if c.CoopThreshold == 0 {
		c.CoopThreshold = defaultCoopThreshold
	}
	if c.MetricsEpochCycles > 0 {
		c.Metrics = true
	}
	if c.Metrics && c.MetricsEpochCycles == 0 {
		c.MetricsEpochCycles = DefaultMetricsEpochCycles
	}
	if c.Eviction == backend.DefaultEviction {
		c.Eviction = ""
	}
	if c.Encryptor == backend.DefaultEncryptor {
		c.Encryptor = ""
	}
	if c.TraceSample > 1 || c.TraceOramOnly || c.TraceTopN > 0 {
		c.Trace = true
	}
	if !c.Trace {
		c.TraceSample, c.TraceOramOnly, c.TraceTopN = 0, false, 0
	} else if c.TraceSample == 1 {
		c.TraceSample = 0 // 1 and 0 both mean "every access"
	}
	return c
}

// MarshalJSON emits the canonical form, so serializing a spec normalizes
// it: unmarshalling the output yields a spec with the same Hash.
func (p Params) MarshalJSON() ([]byte, error) {
	type bare Params // drop methods to avoid recursing into MarshalJSON
	return json.Marshal(bare(p.Canonical()))
}

// ParamsFromJSON decodes a job spec, rejecting unknown fields (a typoed
// knob silently defaulting would poison cache keys), and returns its
// canonical form. The spec is validated.
func ParamsFromJSON(data []byte) (Params, error) {
	type bare Params
	var b bare
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return Params{}, fmt.Errorf("doram: params: %w", err)
	}
	if err := ensureEOF(dec); err != nil {
		return Params{}, err
	}
	p := Params(b).Canonical()
	if err := p.Validate(); err != nil {
		return Params{}, err
	}
	return p, nil
}

// ensureEOF rejects trailing data after the spec document.
func ensureEOF(dec *json.Decoder) error {
	if _, err := dec.Token(); err == nil {
		return fmt.Errorf("doram: params: trailing data after spec")
	}
	return nil
}

// Validate reports whether the spec describes a runnable simulation, by
// lowering it through the same path Simulate uses.
func (p Params) Validate() error {
	ic, err := p.SimConfig().coreConfig()
	if err != nil {
		return err
	}
	return ic.Validate()
}

// Hash returns the spec's stable content hash: the hex SHA-256 of the
// canonical JSON encoding. Specs that differ only in JSON field order or
// in spelled-out defaults hash identically; any knob that changes the
// simulation changes the hash. This is the doramd result-cache key.
func (p Params) Hash() string {
	data, err := json.Marshal(p) // canonical by MarshalJSON
	if err != nil {
		// Params has no unmarshalable field types; this is unreachable
		// short of memory corruption.
		panic(fmt.Sprintf("doram: params hash: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// SimConfig lowers the spec onto a runnable simulation configuration.
func (p Params) SimConfig() SimConfig {
	c := p.Canonical()
	return SimConfig{
		Scheme:             c.Scheme,
		Benchmark:          c.Benchmark,
		NumNS:              *c.NumNS,
		HasSApp:            *c.HasSApp,
		NumS:               c.NumS,
		SplitK:             c.SplitK,
		SecureSharers:      *c.C,
		NSChannels:         c.NSChannels,
		TraceLen:           c.TraceLen,
		Seed:               c.Seed,
		LatencyWarmup:      c.LatencyWarmup,
		Pace:               c.Pace,
		CoopThreshold:      c.CoopThreshold,
		SubtreeLevels:      c.SubtreeLevels,
		LinkLatencyNs:      c.LinkLatencyNs,
		MaxCycles:          c.MaxCycles,
		ForkPath:           c.ForkPath,
		OverlapPhases:      c.OverlapPhases,
		DDR4:               c.DDR4,
		NoFastForward:      c.NoFastForward,
		Eviction:           c.Eviction,
		Encryptor:          c.Encryptor,
		LinkCorruptProb:    c.LinkCorruptProb,
		LinkLossProb:       c.LinkLossProb,
		Metrics:            c.Metrics,
		MetricsEpochCycles: c.MetricsEpochCycles,
		Trace:              c.Trace,
		TraceSample:        c.TraceSample,
		TraceOramOnly:      c.TraceOramOnly,
		TraceTopN:          c.TraceTopN,
	}
}

// ParamsFromSimConfig lifts a simulation configuration into the canonical
// spec. It fails for configurations a spec cannot express: recorded-trace
// replay (TraceDir points into the local filesystem) and the event-ring
// size override (TraceEventLimit only shapes the untransported span ring).
func ParamsFromSimConfig(c SimConfig) (Params, error) {
	if c.TraceDir != "" {
		return Params{}, fmt.Errorf("doram: params: TraceDir is not expressible in a job spec")
	}
	if c.TraceEventLimit != 0 {
		return Params{}, fmt.Errorf("doram: params: TraceEventLimit is not expressible in a job spec")
	}
	numNS, hasS, sharers := c.NumNS, c.HasSApp, c.SecureSharers
	p := Params{
		Scheme:             c.Scheme,
		Benchmark:          c.Benchmark,
		NumNS:              &numNS,
		HasSApp:            &hasS,
		NumS:               c.NumS,
		SplitK:             c.SplitK,
		C:                  &sharers,
		NSChannels:         c.NSChannels,
		TraceLen:           c.TraceLen,
		Seed:               c.Seed,
		LatencyWarmup:      c.LatencyWarmup,
		Pace:               c.Pace,
		CoopThreshold:      c.CoopThreshold,
		SubtreeLevels:      c.SubtreeLevels,
		LinkLatencyNs:      c.LinkLatencyNs,
		MaxCycles:          c.MaxCycles,
		ForkPath:           c.ForkPath,
		OverlapPhases:      c.OverlapPhases,
		DDR4:               c.DDR4,
		NoFastForward:      c.NoFastForward,
		Eviction:           c.Eviction,
		Encryptor:          c.Encryptor,
		LinkCorruptProb:    c.LinkCorruptProb,
		LinkLossProb:       c.LinkLossProb,
		Metrics:            c.Metrics,
		MetricsEpochCycles: c.MetricsEpochCycles,
		Trace:              c.Trace,
		TraceSample:        c.TraceSample,
		TraceOramOnly:      c.TraceOramOnly,
		TraceTopN:          c.TraceTopN,
	}
	return p.Canonical(), nil
}
