package doram

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestParamsHashInvariance: the cache key must not care how the client
// spelled the spec — field order and spelled-out defaults are cosmetic.
func TestParamsHashInvariance(t *testing.T) {
	terse := `{"scheme":"d-oram","benchmark":"face","k":1,"c":4}`
	// Same spec: fields reordered, defaults written out explicitly.
	verbose := `{
		"c": 4,
		"seed": 1,
		"benchmark": "face",
		"trace_len": 20000,
		"num_ns": 7,
		"k": 1,
		"has_sapp": true,
		"pace": 50,
		"coop_threshold": 0.5,
		"scheme": "d-oram"
	}`
	a, err := ParamsFromJSON([]byte(terse))
	if err != nil {
		t.Fatalf("terse spec: %v", err)
	}
	b, err := ParamsFromJSON([]byte(verbose))
	if err != nil {
		t.Fatalf("verbose spec: %v", err)
	}
	if a.Hash() != b.Hash() {
		t.Errorf("hash not invariant under reordering/default-filling:\n  %s\n  %s", a.Hash(), b.Hash())
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("canonical forms differ:\n  %+v\n  %+v", a, b)
	}

	// Implied flags canonicalize too: metrics_epoch_cycles implies metrics,
	// and trace_sample 1 means the same as unset.
	c1, err := ParamsFromJSON([]byte(`{"scheme":"path-oram","benchmark":"libq","metrics_epoch_cycles":4096,"trace":true,"trace_sample":1}`))
	if err != nil {
		t.Fatalf("implied spec: %v", err)
	}
	c2, err := ParamsFromJSON([]byte(`{"scheme":"path-oram","benchmark":"libq","metrics":true,"trace":true}`))
	if err != nil {
		t.Fatalf("explicit spec: %v", err)
	}
	if c1.Hash() != c2.Hash() {
		t.Errorf("implied observability flags changed the hash")
	}

	// Backend names: spelling out the defaults must not change the hash —
	// pre-existing cache keys stay valid — while non-default names must.
	d1, err := ParamsFromJSON([]byte(`{"scheme":"d-oram","benchmark":"face"}`))
	if err != nil {
		t.Fatalf("bare spec: %v", err)
	}
	d2, err := ParamsFromJSON([]byte(`{"scheme":"d-oram","benchmark":"face","eviction":"level-by-level","encryptor":"ctr-hmac"}`))
	if err != nil {
		t.Fatalf("default-backend spec: %v", err)
	}
	if d1.Hash() != d2.Hash() {
		t.Errorf("explicit default backend names changed the hash")
	}
	d3, err := ParamsFromJSON([]byte(`{"scheme":"d-oram","benchmark":"face","eviction":"deterministic-two-path"}`))
	if err != nil {
		t.Fatalf("two-path spec: %v", err)
	}
	if d3.Hash() == d1.Hash() {
		t.Errorf("non-default eviction strategy did not change the hash")
	}
	if _, err := ParamsFromJSON([]byte(`{"scheme":"d-oram","benchmark":"face","eviction":"bogus"}`)); err == nil {
		t.Errorf("unknown eviction name admitted")
	}
}

// TestParamsHashSensitivity: every knob that changes the simulation must
// change the hash.
func TestParamsHashSensitivity(t *testing.T) {
	base := Params{Scheme: SchemeDORAM, Benchmark: "face"}
	seen := map[string]string{base.Hash(): "base"}
	for name, p := range map[string]Params{
		"k":       {Scheme: SchemeDORAM, Benchmark: "face", SplitK: 1},
		"c":       {Scheme: SchemeDORAM, Benchmark: "face", C: intp(4)},
		"bench":   {Scheme: SchemeDORAM, Benchmark: "libq"},
		"seed":    {Scheme: SchemeDORAM, Benchmark: "face", Seed: 2},
		"trace":   {Scheme: SchemeDORAM, Benchmark: "face", TraceLen: 4000},
		"num_ns":  {Scheme: SchemeDORAM, Benchmark: "face", NumNS: intp(3)},
		"pace":    {Scheme: SchemeDORAM, Benchmark: "face", Pace: 100},
		"ddr4":    {Scheme: SchemeDORAM, Benchmark: "face", DDR4: true},
		"metrics": {Scheme: SchemeDORAM, Benchmark: "face", Metrics: true},
	} {
		h := p.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("spec variant %q collides with %q", name, prev)
		}
		seen[h] = name
	}
}

func intp(v int) *int { return &v }

// TestParamsJSONRoundTrip: MarshalJSON emits the canonical form and
// ParamsFromJSON reads it back to an identical spec.
func TestParamsJSONRoundTrip(t *testing.T) {
	p := Params{Scheme: SchemeDORAM, Benchmark: "mummer", SplitK: 2, C: intp(4),
		Seed: 9, Metrics: true, TraceTopN: 8, LinkCorruptProb: 0.01}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	back, err := ParamsFromJSON(data)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(back, p.Canonical()) {
		t.Errorf("round trip drifted:\n  in:  %+v\n  out: %+v", p.Canonical(), back)
	}
	if back.Hash() != p.Hash() {
		t.Errorf("round trip changed the hash")
	}
}

// TestParamsFromJSONRejects: unknown fields and invalid specs must not be
// admitted (a typo silently defaulting would poison cache keys).
func TestParamsFromJSONRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":  `{"scheme":"d-oram","benchmark":"face","splitk":1}`,
		"trailing data":  `{"scheme":"d-oram","benchmark":"face"} {}`,
		"bad scheme":     `{"scheme":"quantum","benchmark":"face"}`,
		"bad benchmark":  `{"scheme":"d-oram","benchmark":"nope"}`,
		"k out of range": `{"scheme":"d-oram","benchmark":"face","k":7}`,
		"k off-scheme":   `{"scheme":"path-oram","benchmark":"face","k":1}`,
		"bad link prob":  `{"scheme":"d-oram","benchmark":"face","link_corrupt_prob":1.5}`,
	}
	for name, in := range cases {
		if _, err := ParamsFromJSON([]byte(in)); err == nil {
			t.Errorf("%s: accepted %s", name, in)
		}
	}
}

// TestParamsSimConfigRoundTrip: lowering to SimConfig and lifting back is
// the identity on canonical specs.
func TestParamsSimConfigRoundTrip(t *testing.T) {
	p := Params{Scheme: SchemeDORAM, Benchmark: "face", SplitK: 1, C: intp(4),
		TraceLen: 5000, Seed: 3, Trace: true, TraceOramOnly: true}.Canonical()
	back, err := ParamsFromSimConfig(p.SimConfig())
	if err != nil {
		t.Fatalf("lift: %v", err)
	}
	if !reflect.DeepEqual(back, p) {
		t.Errorf("SimConfig round trip drifted:\n  in:  %+v\n  out: %+v", p, back)
	}

	if _, err := ParamsFromSimConfig(SimConfig{Scheme: SchemeDORAM, Benchmark: "face", TraceDir: "/tmp/x"}); err == nil {
		t.Errorf("TraceDir spec lifted without error")
	}
}

// TestParamsHashIsHex sanity-checks the hash shape (64 hex chars).
func TestParamsHashIsHex(t *testing.T) {
	h := Params{Scheme: SchemePathORAM, Benchmark: "face"}.Hash()
	if len(h) != 64 || strings.Trim(h, "0123456789abcdef") != "" {
		t.Errorf("hash %q is not 64 lowercase hex chars", h)
	}
}
