package doram

import (
	"context"
	"errors"
	"fmt"

	"doram/internal/clock"
	"doram/internal/core"
	"doram/internal/evtrace"
	"doram/internal/metrics"
	"doram/internal/stats"
	"doram/internal/trace"
)

// Scheme selects the protection architecture of a simulation run.
type Scheme string

// Supported schemes.
const (
	// SchemeNonSecure runs NS-Apps only (solo and channel-partition
	// reference points).
	SchemeNonSecure Scheme = "non-secure"
	// SchemePathORAM is the paper's baseline: on-chip Path ORAM over the
	// direct-attached channels.
	SchemePathORAM Scheme = "path-oram"
	// SchemeSecureMemory is the ObfusMem/InvisiMem-style comparator.
	SchemeSecureMemory Scheme = "secure-memory"
	// SchemeDORAM is the paper's design: BOB channels with the secure
	// delegator on channel 0.
	SchemeDORAM Scheme = "d-oram"
)

func (s Scheme) internal() (core.Scheme, error) {
	switch s {
	case SchemeNonSecure:
		return core.NonSecure, nil
	case SchemePathORAM:
		return core.PathORAMBaseline, nil
	case SchemeSecureMemory:
		return core.SecureMemory, nil
	case SchemeDORAM:
		return core.DORAM, nil
	default:
		return 0, fmt.Errorf("doram: unknown scheme %q", string(s))
	}
}

// AllNS lets every NS-App allocate on the secure channel (no /c limit).
const AllNS = core.AllNS

// SimConfig describes one co-run simulation (Table II system; the
// benchmark names and MPKIs come from Table III).
type SimConfig struct {
	Scheme    Scheme
	Benchmark string

	// NumNS is the number of NS-App copies (paper: 7).
	NumNS int
	// HasSApp runs an S-App under the scheme's protection. It defaults to
	// true for every scheme except SchemeNonSecure.
	HasSApp bool
	// NumS runs multiple S-App copies (0 with HasSApp means 1) — the
	// §III-C capacity-pressure scenario.
	NumS int
	// ForkPath enables the redundant-path-access elimination of Zhang et
	// al. (MICRO 2015), an optional optimization outside the paper's
	// evaluated configurations.
	ForkPath bool
	// OverlapPhases pipelines consecutive ORAM accesses in the SD ([39]'s
	// read/write phase acceleration; off reproduces the paper).
	OverlapPhases bool
	// Eviction selects the ORAM write-back strategy by name ("" =
	// level-by-level; see internal/oram/backend.Evictions). Strategies
	// that schedule extra eviction paths (deterministic-two-path) change
	// the simulated address stream; selection-only strategies matter to
	// the functional plane.
	Eviction string
	// Encryptor selects the functional-plane bucket crypto by name ("" =
	// ctr-hmac; see internal/oram/backend.Encryptors). Validated and
	// carried in job specs; timing results do not depend on it.
	Encryptor string
	// DDR4 swaps DDR3-1600 for DDR4-2400 devices (bank groups).
	DDR4 bool

	// LatencyWarmup discards each latency stream's first N observations
	// (cold-start queues and row buffers) from the reported statistics;
	// execution-time metrics are end-to-end and unaffected. The sweep
	// runner uses TraceLen/20.
	LatencyWarmup uint64
	// Pace is the timing-protection interval t (§III-B) in memory cycles;
	// 0 uses the paper's 50.
	Pace uint64
	// CoopThreshold is the bandwidth-preallocation share for ORAM traffic
	// on channels it shares with NS-Apps (§IV); 0 uses the paper's 0.5.
	CoopThreshold float64
	// SubtreeLevels overrides the ORAM subtree layout depth; 0 uses the
	// paper's 7. A value of 1 degenerates to the naive level-order layout.
	SubtreeLevels int
	// LinkLatencyNs overrides the BOB buffer-logic+link latency; 0 uses
	// the paper's 15 ns.
	LinkLatencyNs float64
	// MaxCycles bounds the run as a livelock safety net; 0 uses the
	// 2-billion-cycle default.
	MaxCycles uint64

	// NSChannels restricts NS-Apps to a channel subset (e.g. []int{1,2,3}
	// for the 7NS-3ch partition). Nil means all four channels.
	NSChannels []int
	// SecureSharers is D-ORAM's c: how many NS-Apps may use channel 0.
	// Use AllNS for no limit.
	SecureSharers int
	// SplitK is D-ORAM's tree-split depth (0-3); the ORAM tree grows by
	// 2^k and the bottom k levels move to the normal channels.
	SplitK int

	// TraceLen is the number of memory accesses each core replays.
	TraceLen uint64
	Seed     uint64

	// TraceDir loads recorded traces (cmd/tracegen -o) instead of
	// synthesizing: "<Benchmark>.<core>.dtrc" per core, else a shared
	// "<Benchmark>.dtrc" rotated per core.
	TraceDir string

	// LinkCorruptProb / LinkLossProb make every BOB serial link unreliable
	// (SchemeDORAM only): each transfer attempt is independently corrupted
	// (caught by the receiver's frame checksum) or lost (times out) with
	// these probabilities, and recovered by sequence-numbered retransmission
	// with exponential backoff. The recovery cost appears in the result's
	// LinkFaults.
	LinkCorruptProb float64
	LinkLossProb    float64

	// NoFastForward disables the idle-cycle fast-forward scheduler and
	// visits every CPU cycle like the original loop. Fast-forward (the
	// default) is bit-identical in results, metrics and traces — the
	// differential test suite enforces it — so this is an escape hatch and
	// the reference side of that comparison, not a fidelity trade-off.
	NoFastForward bool

	// NoParallelMem keeps the fast-forward loop's memory-edge ticks serial
	// instead of spreading the channels over a worker pool between bus-edge
	// barriers. Like NoFastForward this is an execution-strategy knob, not a
	// simulation parameter: results are bit-identical either way (enforced
	// by the differential suite), so it is an escape hatch and the oracle
	// side of that comparison. The engine also self-disables under event
	// tracing and on single-processor runtimes.
	NoParallelMem bool

	// Metrics enables the observability subsystem: a metric registry over
	// every simulated component and a cycle-sampled timeline of bus
	// utilization, queue depths, stash occupancy and link fault counters,
	// returned in SimResult.Metrics / SimResult.Timeline. Off by default;
	// disabled runs pay at most a nil check per instrumentation point.
	Metrics bool
	// MetricsEpochCycles is the timeline sampling period in CPU cycles;
	// 0 uses DefaultMetricsEpochCycles. Setting it implies Metrics.
	MetricsEpochCycles uint64

	// Trace enables per-access event tracing: nested spans across the
	// engine, delegator, links, memory controllers and NS request paths,
	// returned in SimResult.Trace together with the per-stage latency
	// attribution (SimResult.LatencyBreakdown). Off by default; disabled
	// runs pay at most a nil check per instrumentation point.
	Trace bool
	// TraceEventLimit bounds retained span events (ring buffer, oldest
	// evicted first); 0 uses the evtrace default (200k). Implies Trace.
	TraceEventLimit int
	// TraceSample keeps every Nth ORAM access / NS request in the event
	// ring (0 or 1 = all); the attribution report always covers every
	// access. Values > 1 imply Trace.
	TraceSample uint64
	// TraceOramOnly suppresses NS-request spans, keeping sweep traces
	// small; NS latency breakdowns are still recorded. Implies Trace.
	TraceOramOnly bool
	// TraceTopN sizes the slowest-ORAM-accesses report in the trace
	// (0 = 16). Implies Trace.
	TraceTopN int
}

// DefaultMetricsEpochCycles is the default timeline sampling period.
const DefaultMetricsEpochCycles = core.DefaultMetricsEpochCycles

// MetricsDump is a run's final metric registry snapshot: counters,
// histograms and the sampled timeline.
type MetricsDump = metrics.Dump

// MetricsTimeline is the epoch-sampled series record of a run.
type MetricsTimeline = metrics.Timeline

// EventTrace is a run's per-access span record: events, drop/violation
// counters, the attribution report and the slowest accesses. Export it
// with WriteChrome for Perfetto / chrome://tracing.
type EventTrace = evtrace.Trace

// TraceReport is the per-stage latency-attribution report: for each
// request kind (oram, ns_read, ns_write), mean/p50/p95/p99 per stage,
// with stage means summing to the end-to-end mean.
type TraceReport = evtrace.Report

// DefaultSimConfig returns the paper's 1S7NS co-run for the scheme.
func DefaultSimConfig(scheme Scheme, benchmark string) SimConfig {
	return SimConfig{
		Scheme:        scheme,
		Benchmark:     benchmark,
		NumNS:         7,
		HasSApp:       scheme != SchemeNonSecure,
		SecureSharers: AllNS,
		TraceLen:      20000,
		Seed:          1,
	}
}

// SimResult summarizes one run. Times are in CPU cycles at 3.2 GHz unless
// stated otherwise.
type SimResult struct {
	// NSFinish is each NS core's execution time.
	NSFinish []uint64
	// AvgNSExecCycles is the mean NS execution time — the metric Figures
	// 4, 9, 10 and 11 normalize.
	AvgNSExecCycles float64
	// NSReadLatencyNs / NSWriteLatencyNs are the mean NS memory access
	// latencies (Figure 13's metric).
	NSReadLatencyNs  float64
	NSWriteLatencyNs float64
	// NSReadP50Ns / NSReadP95Ns / NSReadP99Ns are read latency percentiles
	// (upper bounds from the latency histogram).
	NSReadP50Ns float64
	NSReadP95Ns float64
	NSReadP99Ns float64
	// ORAMAccesses counts completed ORAM accesses (real + dummy).
	ORAMAccesses uint64
	// ORAMAccessNs is the mean ORAM access time (read + write phase).
	ORAMAccessNs float64
	// TotalEnergyUJ is the DRAM energy consumed over the run (microjoules).
	TotalEnergyUJ float64
	// LinkFaults summarizes serial-link fault recovery across all BOB
	// channels (all zero on reliable links or non-DORAM schemes).
	LinkFaults LinkFaultSummary
	// ChannelDataBusBusy is each channel's aggregate data-bus busy memory
	// cycles (summed over sub-channels).
	ChannelDataBusBusy []uint64
	// Metrics is the final metric dump and Timeline its sampled series
	// record; both are nil unless SimConfig.Metrics was set (Timeline is
	// the same object as Metrics.Timeline).
	Metrics  *MetricsDump     `json:",omitempty"`
	Timeline *MetricsTimeline `json:"-"`
	// Trace is the per-access event trace (nil unless SimConfig.Trace was
	// set). Excluded from the result JSON — export it with WriteChrome.
	// LatencyBreakdown is its attribution report, inlined for convenience.
	Trace            *EventTrace  `json:"-"`
	LatencyBreakdown *TraceReport `json:",omitempty"`
	// Raw carries the exact integer aggregates behind the derived summary
	// fields above, making the serialized result self-sufficient as a wire
	// format: a remote consumer (the experiments runner targeting a doramd
	// endpoint) can rebuild the statistics without floating-point loss.
	Raw *SimRaw `json:",omitempty"`
}

// LatencyParts is the exact integer aggregate of one latency stream
// (CPU cycles), sufficient to reconstruct count, sum, mean, min and max.
type LatencyParts struct {
	Count uint64
	Sum   uint64
	Min   uint64
	Max   uint64
}

// SimRaw is the exact-aggregate companion of a SimResult (see
// SimResult.Raw). All times are CPU cycles.
type SimRaw struct {
	// Cycles is the cycle at which the last measured core retired its
	// final instruction.
	Cycles uint64
	// NSInstrs holds each NS core's retired instruction count.
	NSInstrs []uint64 `json:",omitempty"`
	// NSRead / NSWrite aggregate NS memory latencies over all cores.
	NSRead  LatencyParts
	NSWrite LatencyParts
	// ChannelRead / ChannelWrite are the per-channel NS latency aggregates.
	ChannelRead  []LatencyParts `json:",omitempty"`
	ChannelWrite []LatencyParts `json:",omitempty"`
	// ChannelEnergyUJ is each channel's DRAM energy (microjoules) and
	// ChannelRowHitRate its approximate row-buffer hit rate.
	ChannelEnergyUJ   []float64 `json:",omitempty"`
	ChannelRowHitRate []float64 `json:",omitempty"`
	// ORAM carries the S-App executor aggregates (nil without an S-App).
	ORAM *ORAMRaw `json:",omitempty"`
}

// ORAMRaw is the exact aggregate of the first S-App's ORAM execution.
type ORAMRaw struct {
	// Accesses counts completed ORAM accesses; Real of those carried a
	// program request and Dummy kept the access pace.
	Accesses uint64
	Real     uint64
	Dummy    uint64
	// RemoteBlocks counts blocks moved to/from the normal channels by the
	// +k tree split.
	RemoteBlocks uint64
	// ReadPhase / WritePhase are the per-phase latency aggregates.
	ReadPhase  LatencyParts
	WritePhase LatencyParts
	// SAppFinish is the S-App core's completion cycle (0 if it outlived
	// the run, which it usually does).
	SAppFinish uint64
}

// LinkFaultSummary aggregates the BOB links' unreliability counters.
type LinkFaultSummary struct {
	// Corrupted / Lost are transfer attempts rejected by the frame
	// checksum or dropped in flight; Retransmits recovered them.
	Corrupted   uint64
	Lost        uint64
	Retransmits uint64
	// GiveUps counts sends that exhausted the retransmit budget.
	GiveUps uint64
	// RetryDelayNs is the total delivery delay retransmission added.
	RetryDelayNs float64
}

// coreConfig lowers the public configuration onto the internal one,
// filling paper defaults for every zero-valued knob.
func (cfg SimConfig) coreConfig() (core.Config, error) {
	scheme, err := cfg.Scheme.internal()
	if err != nil {
		return core.Config{}, err
	}
	ic := core.DefaultConfig(scheme, cfg.Benchmark)
	ic.NumNS = cfg.NumNS
	ic.HasSApp = cfg.HasSApp
	ic.NumS = cfg.NumS
	ic.ForkPath = cfg.ForkPath
	ic.OverlapPhases = cfg.OverlapPhases
	ic.Eviction = cfg.Eviction
	ic.Encryptor = cfg.Encryptor
	ic.DDR4 = cfg.DDR4
	ic.NSChannels = cfg.NSChannels
	ic.SecureSharers = cfg.SecureSharers
	ic.SplitK = cfg.SplitK
	if cfg.TraceLen > 0 {
		ic.TraceLen = cfg.TraceLen
	}
	if cfg.Seed != 0 {
		ic.Seed = cfg.Seed
	}
	ic.TraceDir = cfg.TraceDir
	ic.LinkCorruptProb = cfg.LinkCorruptProb
	ic.LinkLossProb = cfg.LinkLossProb
	ic.NoFastForward = cfg.NoFastForward
	ic.NoParallelMem = cfg.NoParallelMem
	ic.LatencyWarmup = cfg.LatencyWarmup
	ic.SubtreeLevels = cfg.SubtreeLevels
	ic.LinkLatencyNs = cfg.LinkLatencyNs
	if cfg.Pace > 0 {
		ic.Pace = cfg.Pace
	}
	if cfg.CoopThreshold > 0 {
		ic.CoopThreshold = cfg.CoopThreshold
	}
	if cfg.MaxCycles > 0 {
		ic.MaxCycles = cfg.MaxCycles
	}
	if cfg.Metrics || cfg.MetricsEpochCycles > 0 {
		ic.MetricsEpochCycles = cfg.MetricsEpochCycles
		if ic.MetricsEpochCycles == 0 {
			ic.MetricsEpochCycles = DefaultMetricsEpochCycles
		}
	}
	if cfg.Trace || cfg.TraceEventLimit != 0 || cfg.TraceSample > 1 || cfg.TraceOramOnly || cfg.TraceTopN != 0 {
		ic.TraceEvents = true
		ic.TraceLimit = cfg.TraceEventLimit
		ic.TraceSample = cfg.TraceSample
		ic.TraceOramOnly = cfg.TraceOramOnly
		ic.TraceTopK = cfg.TraceTopN
	}
	return ic, nil
}

// Simulate builds and runs one co-run simulation.
func Simulate(cfg SimConfig) (*SimResult, error) {
	return SimulateContext(context.Background(), cfg)
}

// SimulateContext is Simulate with cooperative cancellation: when ctx is
// cancelled or its deadline passes, the run loop aborts within a few
// thousand iterations and the context's error is returned. The check is
// polled, so a nil or Background context costs the simulation nothing.
func SimulateContext(ctx context.Context, cfg SimConfig) (*SimResult, error) {
	ic, err := cfg.coreConfig()
	if err != nil {
		return nil, err
	}
	if ctx != nil && ctx.Done() != nil {
		ic.Stop = func() bool { return ctx.Err() != nil }
	}
	sys, err := core.NewSystem(ic)
	if err != nil {
		return nil, err
	}
	res, err := sys.Run()
	if err != nil {
		if errors.Is(err, core.ErrStopped) && ctx != nil && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, err
	}
	out := &SimResult{
		NSFinish:           res.NSFinish,
		AvgNSExecCycles:    res.AvgNSFinish(),
		NSReadLatencyNs:    clock.CPUToNanos(uint64(res.AvgReadLatency())),
		NSWriteLatencyNs:   clock.CPUToNanos(uint64(res.AvgWriteLatency())),
		TotalEnergyUJ:      res.TotalEnergyUJ(),
		ChannelDataBusBusy: res.ChannelDataBusBusy[:],
		Metrics:            res.Metrics,
		Timeline:           res.Timeline,
	}
	if res.Trace != nil {
		out.Trace = res.Trace
		out.LatencyBreakdown = &res.Trace.Report
	}
	if res.NSReadHist != nil {
		out.NSReadP50Ns = clock.CPUToNanos(res.NSReadHist.Percentile(50))
		out.NSReadP95Ns = clock.CPUToNanos(res.NSReadHist.Percentile(95))
		out.NSReadP99Ns = clock.CPUToNanos(res.NSReadHist.Percentile(99))
	}
	if res.SApp != nil {
		out.ORAMAccesses = res.SApp.Accesses.Value()
		out.ORAMAccessNs = clock.CPUToNanos(uint64(res.SApp.ReadPhase.Mean() + res.SApp.WritePhase.Mean()))
	}
	lf := res.TotalLinkFaults()
	out.LinkFaults = LinkFaultSummary{
		Corrupted:    lf.Corrupted,
		Lost:         lf.Lost,
		Retransmits:  lf.Retransmits,
		GiveUps:      lf.GiveUps,
		RetryDelayNs: clock.CPUToNanos(lf.RetryCycles),
	}
	out.Raw = rawFromResults(res)
	return out, nil
}

// latencyParts extracts a latency stream's exact integer aggregate.
func latencyParts(l stats.Latency) LatencyParts {
	return LatencyParts{Count: l.Count(), Sum: l.Sum(), Min: l.Min(), Max: l.Max()}
}

// rawFromResults assembles the exact-aggregate companion of a result.
func rawFromResults(res *core.Results) *SimRaw {
	raw := &SimRaw{
		Cycles:            res.Cycles,
		NSInstrs:          res.NSInstrs,
		NSRead:            latencyParts(res.NSReadLat),
		NSWrite:           latencyParts(res.NSWriteLat),
		ChannelEnergyUJ:   res.ChannelEnergyUJ[:],
		ChannelRowHitRate: res.ChannelRowHitRate[:],
	}
	for ch := 0; ch < core.NumChannels; ch++ {
		raw.ChannelRead = append(raw.ChannelRead, latencyParts(res.ReadLatPerChannel[ch]))
		raw.ChannelWrite = append(raw.ChannelWrite, latencyParts(res.WriteLatPerChannel[ch]))
	}
	if res.SApp != nil {
		raw.ORAM = &ORAMRaw{
			Accesses:     res.SApp.Accesses.Value(),
			Real:         res.SApp.RealAccesses.Value(),
			Dummy:        res.SApp.DummyAccesses.Value(),
			RemoteBlocks: res.SApp.RemoteBlocks.Value(),
			ReadPhase:    latencyParts(res.SApp.ReadPhase),
			WritePhase:   latencyParts(res.SApp.WritePhase),
			SAppFinish:   res.SAppFinish,
		}
	}
	return raw
}

// Benchmarks returns the 15 Table III benchmark names.
func Benchmarks() []string { return trace.Names() }

// ValidateChromeTrace checks an exported Chrome trace-event JSON document
// for well-formedness and span-nesting invariants — the CI gate over
// WriteChrome output.
func ValidateChromeTrace(data []byte) error { return evtrace.ValidateChromeJSON(data) }
