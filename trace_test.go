package doram

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// traceRun is the fixed configuration the trace tests share: d-oram so the
// full pipeline (engine, SD, link, BOB, sub-channel MCs) contributes spans.
func traceRun(t *testing.T) *SimResult {
	t.Helper()
	cfg := DefaultSimConfig(SchemeDORAM, "face")
	cfg.TraceLen = 2000
	cfg.Trace = true
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.LatencyBreakdown == nil {
		t.Fatal("tracing enabled but no trace/breakdown returned")
	}
	return res
}

// TestTraceGolden pins the exact Chrome trace-event JSON of a fixed bounded
// run — the same bytes `doramsim -trace-json` would write. The small ring
// limit also exercises oldest-first eviction. Regenerate with
// `go test -run TestTraceGolden -update .` after intentional changes.
func TestTraceGolden(t *testing.T) {
	cfg := DefaultSimConfig(SchemeDORAM, "face")
	cfg.TraceLen = 200
	cfg.Trace = true
	cfg.TraceSample = 4
	cfg.TraceEventLimit = 1200
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Dropped == 0 {
		t.Fatal("golden config expected to overflow its ring")
	}
	var buf bytes.Buffer
	if err := res.Trace.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "trace_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace diverged from %s (run with -update if intentional); got %d bytes, want %d",
			golden, buf.Len(), len(want))
	}
	if err := ValidateChromeTrace(want); err != nil {
		t.Fatalf("golden trace invalid: %v", err)
	}
}

// TestTraceChromeValid runs the exported trace of every scheme through the
// nesting/timestamp validator — the invariant doramsim -trace-validate
// gates on in CI.
func TestTraceChromeValid(t *testing.T) {
	for _, scheme := range []Scheme{SchemeDORAM, SchemePathORAM, SchemeNonSecure} {
		cfg := DefaultSimConfig(scheme, "face")
		cfg.TraceLen = 1000
		cfg.Trace = true
		res, err := Simulate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if err := res.Trace.Validate(); err != nil {
			t.Fatalf("%s: trace invariants: %v", scheme, err)
		}
		var buf bytes.Buffer
		if err := res.Trace.WriteChrome(&buf); err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if err := ValidateChromeTrace(buf.Bytes()); err != nil {
			t.Fatalf("%s: chrome validation: %v", scheme, err)
		}
	}
}

// TestTraceBreakdownSums ties the attribution report to end-to-end latency:
// the stage partitions telescope, so per kind the stage means must sum to
// the total mean (float rounding only), and every kind must have seen work.
func TestTraceBreakdownSums(t *testing.T) {
	res := traceRun(t)
	kinds := make(map[string]bool)
	for _, k := range res.LatencyBreakdown.Kinds {
		kinds[k.Kind] = true
		if k.Total.Count == 0 {
			t.Fatalf("kind %s: empty total", k.Kind)
		}
		var sum float64
		for _, st := range k.Stages {
			if st.Count != k.Total.Count {
				t.Fatalf("kind %s stage %s: count %d != total count %d",
					k.Kind, st.Stage, st.Count, k.Total.Count)
			}
			sum += st.Mean
		}
		if rel := math.Abs(sum-k.Total.Mean) / k.Total.Mean; rel > 1e-9 {
			t.Fatalf("kind %s: stage means sum %v != end-to-end mean %v",
				k.Kind, sum, k.Total.Mean)
		}
	}
	for _, want := range []string{"oram", "ns_read", "ns_write"} {
		if !kinds[want] {
			t.Fatalf("attribution report missing kind %s (have %v)", want, kinds)
		}
	}
	// Every completed ORAM access lands in the report regardless of event
	// sampling; at most the final in-flight access is missing.
	for _, k := range res.LatencyBreakdown.Kinds {
		if k.Kind == "oram" {
			if k.Total.Count == 0 || k.Total.Count > res.ORAMAccesses ||
				res.ORAMAccesses-k.Total.Count > 2 {
				t.Fatalf("oram breakdown count %d vs %d accesses", k.Total.Count, res.ORAMAccesses)
			}
		}
	}
	if res.Trace.Violations != 0 {
		t.Fatalf("run recorded %d trace invariant violations", res.Trace.Violations)
	}
}

// TestTraceDORAMTrackPlacement pins the paper's delegation claim in the
// trace itself (§III): with no tree split, every ORAM block transaction
// executes on the secure channel's BOB-local sub-channel tracks, and the
// only ORAM activity crossing the serial link is packet transfers.
func TestTraceDORAMTrackPlacement(t *testing.T) {
	res := traceRun(t)
	var buf bytes.Buffer
	if err := res.Trace.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			TID  int            `json:"tid"`
			Cat  string         `json:"cat"`
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	tracks := make(map[int]string)
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			tracks[ev.TID] = ev.Args["name"].(string)
		}
	}
	var oramBlocks, linkPackets int
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		track := tracks[ev.TID]
		onMemory := strings.HasSuffix(track, ".mc") || strings.HasSuffix(track, ".dram")
		if ev.Cat == "oram" && onMemory {
			oramBlocks++
			if !strings.HasPrefix(track, "chan0.sub") {
				t.Fatalf("ORAM block transaction escaped the secure channel: track %s", track)
			}
		}
		if strings.Contains(track, ".link.") {
			if ev.Name != "packet" {
				t.Fatalf("non-packet span %q on link track %s", ev.Name, track)
			}
			if strings.HasPrefix(track, "chan0.") {
				linkPackets++
			}
		}
	}
	if oramBlocks == 0 {
		t.Fatal("no ORAM block transactions traced")
	}
	if linkPackets == 0 {
		t.Fatal("no packets traced on the secure channel's link")
	}
}

// TestTraceTopSlowest checks the -trace-top report source: bounded size,
// slowest first, and per-entry stages summing to the entry total.
func TestTraceTopSlowest(t *testing.T) {
	cfg := DefaultSimConfig(SchemeDORAM, "face")
	cfg.TraceLen = 2000
	cfg.TraceTopN = 5 // implies tracing
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	top := res.Trace.Top
	if len(top) == 0 || len(top) > 5 {
		t.Fatalf("got %d top accesses, want 1..5", len(top))
	}
	for i, a := range top {
		if i > 0 && a.Total > top[i-1].Total {
			t.Fatalf("top accesses not slowest-first: %d after %d", a.Total, top[i-1].Total)
		}
		var sum uint64
		for _, st := range a.Stages {
			sum += st.Dur
		}
		if sum != a.Total {
			t.Fatalf("top access %d: stages sum %d != total %d", i, sum, a.Total)
		}
	}
}

// TestTraceSamplingBoundsEvents checks that sampling thins the event ring
// without touching the attribution report, which stays population-wide.
func TestTraceSamplingBoundsEvents(t *testing.T) {
	run := func(sample uint64) *SimResult {
		cfg := DefaultSimConfig(SchemeDORAM, "face")
		cfg.TraceLen = 1000
		cfg.Trace = true
		cfg.TraceSample = sample
		res, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	full, thin := run(1), run(16)
	if len(thin.Trace.Events) >= len(full.Trace.Events) {
		t.Fatalf("sampling did not thin events: %d vs %d",
			len(thin.Trace.Events), len(full.Trace.Events))
	}
	if len(full.LatencyBreakdown.Kinds) != len(thin.LatencyBreakdown.Kinds) {
		t.Fatal("sampling changed the report's kind set")
	}
	for i, k := range full.LatencyBreakdown.Kinds {
		tk := thin.LatencyBreakdown.Kinds[i]
		if k.Kind != tk.Kind || k.Total.Count != tk.Total.Count || k.Total.Mean != tk.Total.Mean {
			t.Fatalf("kind %s: report diverged under sampling (%d/%v vs %d/%v)",
				k.Kind, k.Total.Count, k.Total.Mean, tk.Total.Count, tk.Total.Mean)
		}
	}
}

// TestTraceDisabledByDefault pins the default-off contract.
func TestTraceDisabledByDefault(t *testing.T) {
	cfg := DefaultSimConfig(SchemeDORAM, "face")
	cfg.TraceLen = 500
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil || res.LatencyBreakdown != nil {
		t.Fatal("trace returned without being enabled")
	}
}
